//! The event-queue network implementation.

use acdgc_model::rng::component_rng;
use acdgc_model::{NetConfig, ProcId, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Loss and duplication apply only to GC traffic; see crate docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageClass {
    /// Remote invocations and replies: reliable.
    Application,
    /// Collector traffic (`NewSetStubs`, CDMs): may be dropped/duplicated.
    Gc,
}

/// An in-flight or delivered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    pub src: ProcId,
    pub dst: ProcId,
    pub class: MessageClass,
    pub sent_at: SimTime,
    pub deliver_at: SimTime,
    /// Global send sequence; the deterministic tiebreaker for simultaneous
    /// deliveries and the duplicate discriminator.
    pub seq: u64,
    /// Approximate wire size, for byte accounting.
    pub size_bytes: usize,
    /// Piggybacked Lamport clock value of the sending process at send
    /// time. `0` when causal tracing is off (`TraceConfig::lamport`);
    /// receivers witness it into their own clock before recording
    /// delivery-side events. Purely observational: delivery order and
    /// fault injection never read it.
    pub lamport: u64,
    pub payload: M,
}

/// What happened to a [`Network::send`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// Scheduled for delivery (`copies` is 1, or 2 when duplicated).
    Scheduled { copies: u8 },
    /// Dropped by fault injection; will never arrive.
    Dropped,
}

/// Transport counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    pub sent: u64,
    pub delivered: u64,
    pub dropped: u64,
    pub duplicated: u64,
    pub bytes_sent: u64,
    pub gc_sent: u64,
    pub gc_bytes_sent: u64,
}

struct Queued<M>(Envelope<M>);

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert to pop earliest first.
        (other.0.deliver_at, other.0.seq).cmp(&(self.0.deliver_at, self.0.seq))
    }
}

/// The simulated network: a seeded fault injector plus a delivery heap.
pub struct Network<M> {
    config: NetConfig,
    rng: SmallRng,
    queue: BinaryHeap<Queued<M>>,
    next_seq: u64,
    stats: NetStats,
    /// Severed links (directional): sends are dropped while present.
    partitions: rustc_hash::FxHashSet<(ProcId, ProcId)>,
}

impl<M: Clone> Network<M> {
    pub fn new(config: NetConfig, run_seed: u64) -> Self {
        Network {
            config,
            rng: component_rng(run_seed, "network"),
            queue: BinaryHeap::new(),
            next_seq: 0,
            stats: NetStats::default(),
            partitions: rustc_hash::FxHashSet::default(),
        }
    }

    /// Sever the directional link `a -> b`: subsequent sends are dropped
    /// (in-flight traffic already past the send point still arrives).
    pub fn partition(&mut self, a: ProcId, b: ProcId) {
        self.partitions.insert((a, b));
    }

    /// Sever both directions between `a` and `b`.
    pub fn partition_pair(&mut self, a: ProcId, b: ProcId) {
        self.partition(a, b);
        self.partition(b, a);
    }

    /// Restore the directional link `a -> b`.
    pub fn heal(&mut self, a: ProcId, b: ProcId) {
        self.partitions.remove(&(a, b));
    }

    /// Restore every link.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
    }

    /// Whether the directional link is currently severed.
    pub fn is_partitioned(&self, a: ProcId, b: ProcId) -> bool {
        self.partitions.contains(&(a, b))
    }

    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Number of messages in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    fn latency(&mut self) -> SimDuration {
        let lo = self.config.min_latency.as_ticks();
        let hi = self.config.max_latency.as_ticks();
        debug_assert!(
            lo <= hi,
            "NetConfig: min_latency ({lo}) > max_latency ({hi}); \
             release builds clamp the band to min_latency"
        );
        // Explicit clamp for the misconfigured (or degenerate lo == hi)
        // case: collapse the band to `min_latency` rather than panicking
        // in gen_range or silently inverting the bounds.
        let hi = hi.max(lo);
        if hi == lo {
            SimDuration(lo)
        } else {
            SimDuration(self.rng.gen_range(lo..=hi))
        }
    }

    /// Submit a message at simulated time `now` (no causal stamp; see
    /// [`Network::send_clocked`]).
    pub fn send(
        &mut self,
        now: SimTime,
        src: ProcId,
        dst: ProcId,
        class: MessageClass,
        size_bytes: usize,
        payload: M,
    ) -> SendOutcome {
        self.send_clocked(now, src, dst, class, size_bytes, 0, payload)
    }

    /// Submit a message carrying the sender's Lamport clock value, so a
    /// causally traced receiver can witness it on delivery. `lamport` is
    /// carried verbatim on every copy (duplicates included).
    #[allow(clippy::too_many_arguments)]
    pub fn send_clocked(
        &mut self,
        now: SimTime,
        src: ProcId,
        dst: ProcId,
        class: MessageClass,
        size_bytes: usize,
        lamport: u64,
        payload: M,
    ) -> SendOutcome {
        self.stats.sent += 1;
        self.stats.bytes_sent += size_bytes as u64;
        // Classify before any drop decision: GC-overhead accounting means
        // "GC bytes offered to the wire", so a partitioned GC send must
        // still count (loss-sweep experiments under partitions would
        // otherwise misreport collector overhead).
        if class == MessageClass::Gc {
            self.stats.gc_sent += 1;
            self.stats.gc_bytes_sent += size_bytes as u64;
        }
        if self.partitions.contains(&(src, dst)) {
            // A severed link loses everything, application traffic
            // included (unlike probabilistic loss, which models collector
            // tolerance and spares reliable RPC).
            self.stats.dropped += 1;
            return SendOutcome::Dropped;
        }
        if class == MessageClass::Gc
            && self
                .rng
                .gen_bool(self.config.gc_drop_probability.clamp(0.0, 1.0))
        {
            self.stats.dropped += 1;
            return SendOutcome::Dropped;
        }
        let mut copies = 1u8;
        if class == MessageClass::Gc
            && self
                .rng
                .gen_bool(self.config.gc_duplicate_probability.clamp(0.0, 1.0))
        {
            copies = 2;
            self.stats.duplicated += 1;
        }
        for _ in 0..copies {
            let deliver_at = now + self.latency();
            let seq = self.next_seq;
            self.next_seq += 1;
            self.queue.push(Queued(Envelope {
                src,
                dst,
                class,
                sent_at: now,
                deliver_at,
                seq,
                size_bytes,
                lamport,
                payload: payload.clone(),
            }));
        }
        SendOutcome::Scheduled { copies }
    }

    /// Earliest pending delivery time, if any.
    pub fn next_delivery_at(&self) -> Option<SimTime> {
        self.queue.peek().map(|q| q.0.deliver_at)
    }

    /// Pop the next envelope if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<Envelope<M>> {
        if self.next_delivery_at()? <= now {
            self.stats.delivered += 1;
            Some(self.queue.pop().unwrap().0)
        } else {
            None
        }
    }

    /// Pop the next envelope regardless of time (the caller advances its
    /// clock to `deliver_at`).
    pub fn pop_next(&mut self) -> Option<Envelope<M>> {
        let env = self.queue.pop()?.0;
        self.stats.delivered += 1;
        Some(env)
    }

    /// Discard all in-flight traffic (partition everything, used by tests).
    pub fn drop_all_in_flight(&mut self) -> usize {
        let n = self.queue.len();
        self.stats.dropped += n as u64;
        self.queue.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(config: NetConfig, seed: u64) -> Network<u32> {
        Network::new(config, seed)
    }

    #[test]
    fn delivery_order_is_by_time_then_seq() {
        let mut n = net(NetConfig::instant(), 1);
        for i in 0..5u32 {
            n.send(
                SimTime(10),
                ProcId(0),
                ProcId(1),
                MessageClass::Application,
                8,
                i,
            );
        }
        let order: Vec<u32> = std::iter::from_fn(|| n.pop_next().map(|e| e.payload)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4], "ties broken by send sequence");
    }

    #[test]
    fn clocked_sends_carry_the_stamp_on_every_copy() {
        let cfg = NetConfig {
            gc_duplicate_probability: 1.0,
            ..NetConfig::default()
        };
        let mut n = net(cfg, 3);
        n.send_clocked(SimTime(0), ProcId(0), ProcId(1), MessageClass::Gc, 8, 42, 7);
        let envs: Vec<_> = std::iter::from_fn(|| n.pop_next()).collect();
        assert_eq!(envs.len(), 2, "duplicated");
        assert!(envs.iter().all(|e| e.lamport == 42));
        // The plain path stamps 0 (unclocked).
        n.send(
            SimTime(1),
            ProcId(0),
            ProcId(1),
            MessageClass::Application,
            8,
            9,
        );
        assert_eq!(n.pop_next().unwrap().lamport, 0);
    }

    #[test]
    fn pop_due_respects_clock() {
        let cfg = NetConfig {
            min_latency: SimDuration::from_micros(100),
            max_latency: SimDuration::from_micros(100),
            ..NetConfig::default()
        };
        let mut n = net(cfg, 1);
        n.send(SimTime(0), ProcId(0), ProcId(1), MessageClass::Gc, 8, 7);
        assert!(n.pop_due(SimTime(99)).is_none());
        let env = n.pop_due(SimTime(100)).expect("due at 100");
        assert_eq!(env.payload, 7);
        assert_eq!(env.deliver_at, SimTime(100));
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = NetConfig::default();
        let run = |seed: u64| -> Vec<(u64, u32)> {
            let mut n = net(cfg.clone(), seed);
            for i in 0..32u32 {
                n.send(
                    SimTime(i as u64),
                    ProcId(0),
                    ProcId(1),
                    MessageClass::Gc,
                    16,
                    i,
                );
            }
            std::iter::from_fn(|| n.pop_next().map(|e| (e.deliver_at.as_ticks(), e.payload)))
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds diverge");
    }

    #[test]
    fn application_traffic_never_dropped() {
        let mut n = net(NetConfig::lossy(1.0), 5);
        for i in 0..64u32 {
            let outcome = n.send(
                SimTime(0),
                ProcId(0),
                ProcId(1),
                MessageClass::Application,
                8,
                i,
            );
            assert_eq!(outcome, SendOutcome::Scheduled { copies: 1 });
        }
        assert_eq!(n.stats().dropped, 0);
        assert_eq!(n.in_flight(), 64);
    }

    #[test]
    fn gc_traffic_dropped_at_configured_rate() {
        let mut n = net(NetConfig::lossy(0.5), 7);
        for i in 0..2000u32 {
            n.send(SimTime(0), ProcId(0), ProcId(1), MessageClass::Gc, 8, i);
        }
        let dropped = n.stats().dropped;
        assert!(
            (700..1300).contains(&dropped),
            "≈50% of 2000 expected, got {dropped}"
        );
    }

    #[test]
    fn duplication_produces_two_copies() {
        let cfg = NetConfig {
            gc_duplicate_probability: 1.0,
            ..NetConfig::instant()
        };
        let mut n = net(cfg, 3);
        let outcome = n.send(SimTime(0), ProcId(0), ProcId(1), MessageClass::Gc, 8, 9);
        assert_eq!(outcome, SendOutcome::Scheduled { copies: 2 });
        assert_eq!(n.in_flight(), 2);
        let a = n.pop_next().unwrap();
        let b = n.pop_next().unwrap();
        assert_eq!(a.payload, b.payload);
        assert_ne!(a.seq, b.seq, "copies are distinguishable by seq");
    }

    #[test]
    fn latency_spread_reorders_messages() {
        let cfg = NetConfig {
            min_latency: SimDuration::from_micros(1),
            max_latency: SimDuration::from_micros(1_000),
            ..NetConfig::default()
        };
        let mut n = net(cfg, 11);
        for i in 0..64u32 {
            // Sent in order at increasing times 0,1,2,...
            n.send(
                SimTime(i as u64),
                ProcId(0),
                ProcId(1),
                MessageClass::Gc,
                8,
                i,
            );
        }
        let order: Vec<u32> = std::iter::from_fn(|| n.pop_next().map(|e| e.payload)).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(order, sorted, "wide latency band must reorder");
    }

    #[test]
    fn byte_accounting() {
        let mut n = net(NetConfig::instant(), 1);
        n.send(SimTime(0), ProcId(0), ProcId(1), MessageClass::Gc, 100, 1);
        n.send(
            SimTime(0),
            ProcId(0),
            ProcId(1),
            MessageClass::Application,
            50,
            2,
        );
        assert_eq!(n.stats().bytes_sent, 150);
        assert_eq!(n.stats().gc_bytes_sent, 100);
        assert_eq!(n.stats().gc_sent, 1);
    }

    #[test]
    fn partitioned_gc_send_still_counts_as_gc_overhead() {
        let mut n = net(NetConfig::instant(), 1);
        n.partition(ProcId(0), ProcId(1));
        let out = n.send(SimTime(0), ProcId(0), ProcId(1), MessageClass::Gc, 64, 1);
        assert_eq!(out, SendOutcome::Dropped);
        let stats = n.stats();
        assert_eq!(stats.gc_sent, 1, "GC classification precedes the cut");
        assert_eq!(stats.gc_bytes_sent, 64);
        assert_eq!(stats.dropped, 1);
        // Application traffic on the same severed link stays out of the
        // GC ledger.
        n.send(
            SimTime(0),
            ProcId(0),
            ProcId(1),
            MessageClass::Application,
            32,
            2,
        );
        assert_eq!(n.stats().gc_sent, 1);
        assert_eq!(n.stats().gc_bytes_sent, 64);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "min_latency")]
    fn inverted_latency_band_asserts_in_debug() {
        let cfg = NetConfig {
            min_latency: SimDuration::from_micros(500),
            max_latency: SimDuration::from_micros(100),
            ..NetConfig::default()
        };
        let mut n = net(cfg, 1);
        n.send(SimTime(0), ProcId(0), ProcId(1), MessageClass::Gc, 8, 1);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn inverted_latency_band_clamps_to_min_in_release() {
        let cfg = NetConfig {
            min_latency: SimDuration::from_micros(500),
            max_latency: SimDuration::from_micros(100),
            ..NetConfig::default()
        };
        let mut n = net(cfg, 1);
        n.send(SimTime(0), ProcId(0), ProcId(1), MessageClass::Gc, 8, 1);
        let env = n.pop_next().expect("scheduled");
        assert_eq!(
            env.deliver_at,
            SimTime(500),
            "band collapses to min_latency, not the inverted max"
        );
    }

    #[test]
    fn drop_all_in_flight_partitions() {
        let mut n = net(NetConfig::instant(), 1);
        for i in 0..4u32 {
            n.send(SimTime(0), ProcId(0), ProcId(1), MessageClass::Gc, 8, i);
        }
        assert_eq!(n.drop_all_in_flight(), 4);
        assert!(n.pop_next().is_none());
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let mut n = net(NetConfig::instant(), 1);
        n.partition_pair(ProcId(0), ProcId(1));
        assert!(n.is_partitioned(ProcId(0), ProcId(1)));
        let out = n.send(
            SimTime(0),
            ProcId(0),
            ProcId(1),
            MessageClass::Application,
            8,
            1,
        );
        assert_eq!(
            out,
            SendOutcome::Dropped,
            "severed link loses app traffic too"
        );
        let out = n.send(SimTime(0), ProcId(1), ProcId(0), MessageClass::Gc, 8, 2);
        assert_eq!(out, SendOutcome::Dropped);
        // A third process is unaffected.
        let out = n.send(SimTime(0), ProcId(0), ProcId(2), MessageClass::Gc, 8, 3);
        assert!(matches!(out, SendOutcome::Scheduled { .. }));
        n.heal_all();
        let out = n.send(SimTime(0), ProcId(0), ProcId(1), MessageClass::Gc, 8, 4);
        assert!(matches!(out, SendOutcome::Scheduled { .. }));
    }

    #[test]
    fn directional_partition_is_one_way() {
        let mut n = net(NetConfig::instant(), 1);
        n.partition(ProcId(0), ProcId(1));
        assert_eq!(
            n.send(SimTime(0), ProcId(0), ProcId(1), MessageClass::Gc, 8, 1),
            SendOutcome::Dropped
        );
        assert!(matches!(
            n.send(SimTime(0), ProcId(1), ProcId(0), MessageClass::Gc, 8, 2),
            SendOutcome::Scheduled { .. }
        ));
        n.heal(ProcId(0), ProcId(1));
        assert!(!n.is_partitioned(ProcId(0), ProcId(1)));
    }
}
