//! Shared fixtures for the Criterion benches and the `experiments` binary.
//!
//! Every paper table/figure reproduction lives in one of two places:
//!
//! * `benches/*.rs` — Criterion wall-time benchmarks (one per table or
//!   figure family), regenerated with `cargo bench -p acdgc-bench`;
//! * `src/bin/experiments.rs` — the deterministic harness that prints the
//!   paper-shaped tables (rows and series, counts and ratios) and emits
//!   JSON consumed by EXPERIMENTS.md.

use acdgc_heap::{Heap, HeapRef};
use acdgc_model::{GcConfig, NetConfig, ObjId, ProcId, RefId, SimDuration};
use acdgc_remoting::RemotingTables;
use acdgc_sim::{scenarios, InvokeSpec, System};

/// A system tuned for measurement: manual GC phases, instant reliable
/// network, oracle checks off (they are O(heap) per reclamation).
pub fn bench_system(procs: usize, seed: u64) -> System {
    let mut sys = System::new(procs, GcConfig::manual(), NetConfig::instant(), seed);
    sys.check_safety = false;
    sys
}

/// Simulated argument marshalling: a real remoting stack serializes every
/// argument object (Table 1's cost baseline is dominated by exactly this —
/// the DGC instrumentation is a fractional addition on top). Encodes each
/// argument's payload and fields into a wire buffer, like the compact
/// snapshot codec does.
fn marshal_call_args(sys: &System, args: &[ObjId], wire: &mut Vec<u8>) -> usize {
    wire.clear();
    for &arg in args {
        let record = sys.proc(arg.proc).heap.get(arg).expect("live argument");
        // Header: slot, generation, field count.
        wire.extend_from_slice(&arg.slot.to_le_bytes());
        wire.extend_from_slice(&record.generation.to_le_bytes());
        wire.extend_from_slice(&(record.refs.len() as u32).to_le_bytes());
        for r in &record.refs {
            match r {
                acdgc_heap::HeapRef::Local(slot) => {
                    wire.push(0);
                    wire.extend_from_slice(&slot.to_le_bytes());
                }
                acdgc_heap::HeapRef::Remote(ref_id) => {
                    wire.push(1);
                    wire.extend_from_slice(&ref_id.0.to_le_bytes());
                }
            }
        }
        // Payload body: LEB128 per word, like a real wire format (the
        // encoding work is the point — RMI cost is marshalling-dominated).
        for w in 0..record.payload_words {
            let mut v = (u64::from(w) ^ 0xdead_beef).wrapping_mul(0x9e37_79b9);
            loop {
                let byte = (v & 0x7f) as u8;
                v >>= 7;
                if v == 0 {
                    wire.push(byte);
                    break;
                }
                wire.push(byte | 0x80);
            }
        }
    }
    std::hint::black_box(wire.len())
}

/// The Table 1 workload: `calls` remote invocations, each exporting
/// `refs_per_call` fresh references (the paper's "remote method with 10
/// arguments"), between two co-located processes. Both variants pay the
/// marshalling cost; only the instrumented one pays DGC bookkeeping.
/// Returns the system for inspection.
pub fn run_table1_workload(
    calls: usize,
    refs_per_call: usize,
    instrumented: bool,
    seed: u64,
) -> System {
    let mut sys = bench_system(2, seed);
    sys.config_mut().instrument_remoting = instrumented;
    let client = ProcId(0);
    let server_obj = sys.alloc(ProcId(1), 4);
    let root = sys.alloc(client, 1);
    sys.add_root(root).unwrap();
    sys.add_root(server_obj).unwrap();
    let service = sys.create_remote_ref(root, server_obj).unwrap();
    let mut wire = Vec::with_capacity(16 * 1024);
    for _ in 0..calls {
        // Fresh argument objects each call, like a real RMI workload; the
        // payload size models a typical few-KB argument record.
        let args: Vec<ObjId> = (0..refs_per_call)
            .map(|_| {
                let o = sys.alloc(client, 512);
                sys.add_local_ref(root, o).unwrap();
                o
            })
            .collect();
        marshal_call_args(&sys, &args, &mut wire);
        sys.invoke(client, service, InvokeSpec::exporting(args))
            .unwrap();
        sys.drain_network();
    }
    sys
}

/// The serialization workload of §4: a chain of `n` "dummy objects (just
/// holding a reference)", optionally with one remote reference per object
/// (the "+10000 stubs" variant).
pub fn serialization_heap(n: usize, with_stubs: bool) -> (Heap, RemotingTables) {
    let proc = ProcId(0);
    let mut heap = Heap::new(proc);
    let mut tables = RemotingTables::new(proc);
    let ids: Vec<ObjId> = (0..n).map(|_| heap.alloc(1)).collect();
    for pair in ids.windows(2) {
        heap.add_ref(pair[0], HeapRef::Local(pair[1].slot)).unwrap();
    }
    heap.add_root(ids[0]).unwrap();
    if with_stubs {
        for (i, &id) in ids.iter().enumerate() {
            let ref_id = RefId(i as u64);
            tables.add_stub(
                ref_id,
                ObjId::new(ProcId(1), i as u32, 0),
                acdgc_model::SimTime(0),
            );
            heap.add_ref(id, HeapRef::Remote(ref_id)).unwrap();
        }
    }
    (heap, tables)
}

/// Build a garbage ring spanning `procs` processes and prepare summaries
/// so a detection can run immediately. Returns the system and the
/// candidate scion (at process 0).
pub fn prepared_ring(procs: usize, objs_per_proc: usize, seed: u64) -> (System, RefId) {
    let mut sys = bench_system(procs, seed);
    let ids: Vec<ProcId> = (0..procs as u16).map(ProcId).collect();
    let ring = scenarios::ring(&mut sys, &ids, objs_per_proc, false);
    sys.advance(SimDuration::from_millis(1));
    for p in 0..procs {
        sys.run_lgc(ProcId(p as u16));
    }
    sys.drain_network();
    for p in 0..procs {
        sys.take_snapshot(ProcId(p as u16));
    }
    (sys, ring.refs[0])
}

/// Build Fig. 4 (mutually-linked cycles) ready for detection. Returns the
/// system plus the candidate (process, scion).
pub fn prepared_fig4(seed: u64) -> (System, ProcId, RefId) {
    let mut sys = bench_system(6, seed);
    let fig = scenarios::fig4(&mut sys);
    sys.advance(SimDuration::from_millis(1));
    for p in 0..6 {
        sys.take_snapshot(ProcId(p));
    }
    (sys, fig.p2, fig.r_df)
}

/// Run one detection from `scion` at `proc` to completion (drains all CDM
/// traffic). Returns cycles detected.
pub fn run_detection(sys: &mut System, proc: ProcId, scion: RefId) -> u64 {
    let before = sys.metrics.cycles_detected;
    sys.initiate_detection(proc, scion);
    sys.drain_network();
    sys.metrics.cycles_detected - before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_workload_counts() {
        let sys = run_table1_workload(10, 10, true, 1);
        assert_eq!(sys.metrics.invocations, 10);
        assert_eq!(sys.metrics.refs_exported, 100);
        // Every export created a scion at the client and a stub at the
        // server (plus the initial service pair).
        assert_eq!(sys.proc(ProcId(0)).tables.scion_count(), 100);
        assert_eq!(sys.proc(ProcId(1)).tables.stub_count(), 100);
        let uninstrumented = run_table1_workload(10, 10, false, 1);
        assert_eq!(uninstrumented.proc(ProcId(0)).tables.scion_count(), 0);
    }

    #[test]
    fn serialization_heap_shape() {
        let (heap, tables) = serialization_heap(100, true);
        assert_eq!(heap.stats().live_objects, 100);
        assert_eq!(tables.stub_count(), 100);
        let (heap, tables) = serialization_heap(100, false);
        assert_eq!(heap.stats().live_objects, 100);
        assert_eq!(tables.stub_count(), 0);
    }

    #[test]
    fn prepared_ring_detects_in_one_pass() {
        let (mut sys, scion) = prepared_ring(4, 2, 3);
        assert_eq!(run_detection(&mut sys, ProcId(0), scion), 1);
    }

    #[test]
    fn prepared_fig4_detects() {
        // Both derivations (the V-branch and the K-branch) may conclude,
        // one per mutually-linked cycle.
        let (mut sys, proc, scion) = prepared_fig4(3);
        let found = run_detection(&mut sys, proc, scion);
        assert!((1..=2).contains(&found), "found {found}");
    }
}
