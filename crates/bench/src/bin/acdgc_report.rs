//! `acdgc-report` — offline analysis of exported trace artifacts.
//!
//! Ingests the JSON Lines artifacts the test suite and CI write (see
//! `tests/threaded_stress.rs` and `ACDGC_TRACE_ARTIFACT`), reconstructs
//! every detection, and prints:
//!
//! * a per-phase latency table (count / mean / p50 / p99 / max);
//! * the top-k slowest detections with their rendered cross-process CDM
//!   paths;
//! * the message-balance and hop-monotonicity verdicts of
//!   `Trace::check`;
//! * a watchdog/health summary from any `health_report` lines;
//! * with `--timeline`, ASCII sparkline timelines and a counter-rate
//!   table for every `sample` time series in the artifact;
//! * with `--critical-path`, a latency waterfall per slowest detection,
//!   attributing its end-to-end time to transit / queue / handling /
//!   backoff segments (requires Lamport-stamped artifacts for the causal
//!   verdict; the waterfall itself works on any trace);
//! * with `--perfetto OUT.json`, a Chrome trace-event export of a single
//!   artifact — one track per process, flow arrows along CDM hops —
//!   loadable at <https://ui.perfetto.dev>.
//!
//! Usage:
//!
//! ```text
//! acdgc-report [--check] [--timeline] [--critical-path] \
//!              [--perfetto OUT.json] [--top N] [PATH ...]
//! ```
//!
//! `PATH` entries may be `.jsonl` files or directories (scanned for
//! `*.jsonl`); the default is `target/trace-artifacts`. With `--check`
//! the exit code is non-zero when any artifact has a ledger,
//! hop-monotonicity, causal-order, or time-series violation (CI gates on
//! this; see scripts/ci.sh). Artifacts whose ring overflowed
//! (`overwritten > 0`) are suffix traces: their balance checks are
//! skipped, but sample series and causal order are still validated —
//! decimation never overwrites a series, and both causal invariants are
//! stable under truncation, so they hold on any suffix.

use acdgc_obs::{
    counter_rates, group_by_series, perfetto_trace, sparkline, top_waterfalls, HealthReport, Phase,
    Sample, Trace, GAUGE_FIELDS,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: acdgc-report [--check] [--timeline] [--critical-path] \
                     [--perfetto OUT.json] [--top N] [PATH ...]";

#[derive(Debug)]
struct Options {
    check: bool,
    timeline: bool,
    critical_path: bool,
    perfetto: Option<PathBuf>,
    top: usize,
    paths: Vec<PathBuf>,
}

/// Parse a raw argument list (program name already stripped). Split from
/// `main` so the flag grammar is unit-testable; any string starting with
/// `-` that is not a known flag is a usage error, never an artifact path.
fn parse_args_from<I: IntoIterator<Item = String>>(raw: I) -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        timeline: false,
        critical_path: false,
        perfetto: None,
        top: 3,
        paths: Vec::new(),
    };
    let mut args = raw.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--timeline" => opts.timeline = true,
            "--critical-path" => opts.critical_path = true,
            "--perfetto" => {
                let out = args
                    .next()
                    .ok_or(format!("--perfetto needs an output path\n{USAGE}"))?;
                opts.perfetto = Some(PathBuf::from(out));
            }
            "--top" => {
                let n = args
                    .next()
                    .ok_or(format!("--top needs a number\n{USAGE}"))?;
                opts.top = n
                    .parse()
                    .map_err(|_| format!("bad --top value {n:?}\n{USAGE}"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?}\n{USAGE}"))
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if opts.paths.is_empty() {
        opts.paths.push(PathBuf::from("target/trace-artifacts"));
    }
    Ok(opts)
}

fn parse_args() -> Result<Options, String> {
    parse_args_from(std::env::args().skip(1))
}

/// Expand files/directories into the list of `.jsonl` artifacts.
fn artifacts(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for p in paths {
        if p.is_dir() {
            let entries =
                std::fs::read_dir(p).map_err(|e| format!("read dir {}: {e}", p.display()))?;
            for entry in entries {
                let path = entry.map_err(|e| e.to_string())?.path();
                if path.extension().is_some_and(|e| e == "jsonl") {
                    out.push(path);
                }
            }
        } else if p.is_file() {
            out.push(p.clone());
        } else {
            return Err(format!("no such file or directory: {}", p.display()));
        }
    }
    out.sort();
    Ok(out)
}

fn human_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Wall-clock span of one detection: first to last surviving event.
fn detection_span_us(path: &acdgc_obs::DetectionPath) -> u64 {
    let first = path.events.first().map(|r| r.at.0).unwrap_or(0);
    let last = path.events.last().map(|r| r.at.0).unwrap_or(0);
    last.saturating_sub(first)
}

fn report_phases(trace: &Trace) {
    let merged = trace.merged_phases();
    if merged.total_count() == 0 {
        println!("  phases: no timing samples in this artifact");
        return;
    }
    println!(
        "  {:<16} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "phase", "count", "mean", "p50", "p99", "max"
    );
    for phase in Phase::ALL {
        let h = merged.get(phase);
        if h.count() == 0 {
            continue;
        }
        println!(
            "  {:<16} {:>8} {:>10} {:>10} {:>10} {:>10}",
            phase.name(),
            h.count(),
            human_ns(h.mean_nanos()),
            human_ns(h.quantile_upper_nanos(0.5)),
            human_ns(h.quantile_upper_nanos(0.99)),
            human_ns(h.max_nanos()),
        );
    }
}

fn report_detections(trace: &Trace, top: usize) {
    let ids = trace.detection_ids();
    let cycles = trace.detected_cycles();
    println!(
        "  detections: {} reconstructed, {} found a cycle",
        ids.len(),
        cycles.len()
    );
    if ids.is_empty() || top == 0 {
        return;
    }
    let mut spans: Vec<(u64, acdgc_obs::DetectionPath)> = ids
        .into_iter()
        .map(|id| {
            let path = trace.detection(id);
            (detection_span_us(&path), path)
        })
        .collect();
    spans.sort_by_key(|s| std::cmp::Reverse(s.0));
    println!("  slowest {}:", spans.len().min(top));
    for (span, path) in spans.iter().take(top) {
        println!("    {:>9} {}", format!("{}µs", span), path.render());
    }
}

fn report_health(health: &[HealthReport]) {
    if health.is_empty() {
        println!("  health: no watchdog reports in this artifact");
        return;
    }
    let stalls = health
        .iter()
        .filter(|r| r.reason == acdgc_obs::HealthReason::Stall)
        .count();
    println!(
        "  health: {} report(s), {} stall(s); last: {}",
        health.len(),
        stalls,
        health.last().map(|r| r.reason.name()).unwrap_or("-"),
    );
    for r in health {
        if !r.stalled().is_empty() {
            for line in r.render().lines() {
                println!("    {line}");
            }
        }
    }
}

/// Render every time series in the artifact as sparkline timelines plus a
/// counter-rate table: one block per series (global first, then per
/// process), one sparkline per gauge, one rate row per counter.
fn report_timeline(trace: &Trace) {
    if trace.samples.is_empty() {
        println!("  timeline: no sample lines in this artifact");
        return;
    }
    const WIDTH: usize = 48;
    for (proc, rows) in group_by_series(&trace.samples) {
        let label = match proc {
            None => "global".to_string(),
            Some(p) => format!("P{}", p.0),
        };
        let samples: Vec<Sample> = rows.iter().map(|(s, _)| *s).collect();
        let span_us = samples
            .last()
            .map(|s| s.at.0.saturating_sub(samples[0].at.0))
            .unwrap_or(0);
        println!(
            "  timeline [{label}]: {} samples over {}",
            samples.len(),
            human_ns(span_us.saturating_mul(1_000)),
        );
        for (name, get) in GAUGE_FIELDS {
            let values: Vec<u64> = samples.iter().map(get).collect();
            let max = values.iter().copied().max().unwrap_or(0);
            println!(
                "    {:<20} {:<width$} max={max}",
                name,
                sparkline(&values, WIDTH),
                width = WIDTH
            );
        }
        let rates = counter_rates(&samples);
        if rates.is_empty() {
            println!("    rates: need at least two samples spanning nonzero time");
            continue;
        }
        println!(
            "    {:<20} {:>10} {:>12} {:>12}",
            "counter", "total", "avg/s", "peak/s"
        );
        for r in rates {
            println!(
                "    {:<20} {:>10} {:>12.1} {:>12.1}",
                r.name, r.total, r.per_sec_avg, r.per_sec_peak
            );
        }
    }
}

/// Render the top-k slowest detections as critical-path waterfalls: each
/// row attributes the detection's end-to-end latency to transit / queue /
/// handling / backoff segments that sum exactly to the total.
fn report_critical_path(trace: &Trace, top: usize) {
    const WIDTH: usize = 48;
    let falls = top_waterfalls(trace, top.max(1));
    if falls.is_empty() {
        println!("  critical-path: no reconstructable detections in this artifact");
        return;
    }
    let clocked = trace.events.iter().filter(|r| r.lamport > 0).count();
    println!(
        "  critical-path: {} waterfall(s), runtime={}, {} of {} events lamport-stamped",
        falls.len(),
        trace.runtime.as_deref().unwrap_or("unknown"),
        clocked,
        trace.events.len(),
    );
    for fall in &falls {
        for line in fall.render(WIDTH).lines() {
            println!("    {line}");
        }
    }
}

/// Write one artifact's Chrome trace-event export and self-validate it:
/// the written file must parse back as JSON, and every surviving CDM
/// delivery must have produced exactly one flow arrow. Returns the number
/// of violations (0 or 1) so `--check` can gate on a broken export.
fn export_perfetto(trace: &Trace, out: &PathBuf) -> usize {
    let (doc, summary) = perfetto_trace(trace);
    let text = serde_json::to_string(&doc).expect("value serialization is infallible");
    if let Err(e) = std::fs::write(out, &text) {
        eprintln!("acdgc-report: write {}: {e}", out.display());
        return 1;
    }
    let round_trip = std::fs::read_to_string(out)
        .ok()
        .and_then(|t| serde_json::from_str(&t).ok());
    if round_trip.is_none() {
        println!(
            "  perfetto: FAILED ({} does not round-trip as JSON)",
            out.display()
        );
        return 1;
    }
    println!(
        "  perfetto: wrote {} ({} events, {} flows, {} delivered hops, {} unmatched)",
        out.display(),
        summary.events,
        summary.flows,
        summary.delivered_hops,
        summary.unmatched_deliveries,
    );
    0
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("acdgc-report: {e}");
            return ExitCode::from(2);
        }
    };
    let files = match artifacts(&opts.paths) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("acdgc-report: {e}");
            return ExitCode::from(2);
        }
    };
    if files.is_empty() {
        eprintln!(
            "acdgc-report: no .jsonl artifacts under {:?}",
            opts.paths
                .iter()
                .map(|p| p.display().to_string())
                .collect::<Vec<_>>()
        );
        // In --check mode an empty artifact set is a failure: CI expects
        // the stress stage to have produced traces to gate on.
        return if opts.check {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    if opts.perfetto.is_some() && files.len() > 1 {
        eprintln!(
            "acdgc-report: --perfetto exports one artifact but {} matched; pass a single .jsonl file",
            files.len()
        );
        return ExitCode::from(2);
    }

    let mut violations = 0usize;
    for file in &files {
        println!("== {}", file.display());
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("acdgc-report: read {}: {e}", file.display());
                violations += 1;
                continue;
            }
        };
        let (trace, health) = match Trace::from_jsonl(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("acdgc-report: parse {}: {e}", file.display());
                violations += 1;
                continue;
            }
        };
        println!(
            "  events: {} ({} lost to ring overwrite)",
            trace.events.len(),
            trace.overwritten
        );
        report_phases(&trace);
        report_detections(&trace, opts.top);
        report_health(&health);
        if opts.timeline {
            report_timeline(&trace);
        }
        if opts.critical_path {
            report_critical_path(&trace, opts.top);
        }
        if let Some(out) = &opts.perfetto {
            violations += export_perfetto(&trace, out);
        }

        let check = trace.check();
        // Sample series are exact at any length (decimation never
        // overwrites), so their verdict applies even to suffix traces.
        if !check.sample_violations.is_empty() {
            println!(
                "  samples: FAILED ({} violation(s) across {} sample line(s))",
                check.sample_violations.len(),
                trace.samples.len()
            );
            for v in &check.sample_violations {
                println!("    VIOLATION: {v}");
            }
            violations += check.sample_violations.len();
        } else if !trace.samples.is_empty() {
            println!(
                "  samples: OK ({} lines: monotone clocks/counters, capacity bounded)",
                trace.samples.len()
            );
        }
        // Both causal invariants (per-process stamp monotonicity, receive
        // above matching send) are stable under truncation, so like the
        // sample checks their verdict applies even to suffix traces.
        if !check.causal_violations.is_empty() {
            println!(
                "  causal: FAILED ({} violation(s))",
                check.causal_violations.len()
            );
            for v in &check.causal_violations {
                println!("    VIOLATION: {v}");
            }
            violations += check.causal_violations.len();
        } else if trace.events.iter().any(|r| r.lamport > 0) {
            println!("  causal: OK (stamps monotone per process, receives above sends)");
        }
        if check.skipped_overwritten {
            println!("  check: SKIPPED (suffix trace: ring overwrote events)");
            continue;
        }
        if check.hop_violations.is_empty() && check.balance_violations.is_empty() {
            println!(
                "  check: OK ({} detections balanced, hops monotonic)",
                check.detections
            );
        } else {
            println!(
                "  check: FAILED ({} hop violations, {} balance violations)",
                check.hop_violations.len(),
                check.balance_violations.len()
            );
            for v in check.hop_violations.iter().chain(&check.balance_violations) {
                println!("    VIOLATION: {v}");
            }
            violations += check.hop_violations.len() + check.balance_violations.len();
        }
    }

    if opts.check && violations > 0 {
        eprintln!("acdgc-report: --check failed with {violations} violation(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn known_flags_and_paths_parse() {
        let o = parse(&[
            "--check",
            "--timeline",
            "--critical-path",
            "--perfetto",
            "out.json",
            "--top",
            "7",
            "a.jsonl",
            "dir",
        ])
        .unwrap();
        assert!(o.check && o.timeline && o.critical_path);
        assert_eq!(
            o.perfetto.as_deref(),
            Some(std::path::Path::new("out.json"))
        );
        assert_eq!(o.top, 7);
        assert_eq!(
            o.paths,
            vec![PathBuf::from("a.jsonl"), PathBuf::from("dir")]
        );
    }

    #[test]
    fn unknown_flags_are_usage_errors_not_paths() {
        for bad in ["--perfeto", "--criticalpath", "-x", "--check=1"] {
            let err = parse(&[bad, "a.jsonl"]).unwrap_err();
            assert!(
                err.contains("unknown flag") && err.contains(USAGE),
                "{bad:?} must be rejected with usage, got: {err}"
            );
        }
    }

    #[test]
    fn flags_missing_their_value_are_usage_errors() {
        for args in [&["--perfetto"][..], &["--top"][..]] {
            let err = parse(args).unwrap_err();
            assert!(err.contains(USAGE), "missing value must show usage: {err}");
        }
        assert!(parse(&["--top", "x"]).unwrap_err().contains("bad --top"));
    }

    #[test]
    fn no_paths_defaults_to_the_ci_artifact_dir() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.paths, vec![PathBuf::from("target/trace-artifacts")]);
    }
}
