//! The deterministic experiment harness: regenerates every table and
//! figure of the paper's evaluation (plus the ablations indexed in
//! DESIGN.md) and prints them in the paper's row/series shape.
//!
//! Usage: `cargo run --release -p acdgc-bench --bin experiments [ids...]`
//! with ids from {t1, s1, f1, f2, f3, f4, f5, a1, a2, a3, a4, a5, a6,
//! sc1, pp1, ob1}; no ids runs everything. A JSON digest is written to
//! `target/experiments.json`.

use acdgc_baselines::{Backtracer, HughesCollector};
use acdgc_bench::{
    prepared_fig4, prepared_ring, run_detection, run_table1_workload, serialization_heap,
};
use acdgc_model::{
    GcConfig, IntegrationMode, NetConfig, ProcId, SimDuration, SimTime, TraceConfig, TraceFilter,
};
use acdgc_sim::{scenarios, InvokeSpec, System};
use acdgc_snapshot::{capture, CompactCodec, SnapshotCodec, VerboseCodec};
use serde_json::{json, Value};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = [
        "t1", "s1", "f1", "f2", "f3", "f4", "f5", "a1", "a2", "a3", "a4", "a5", "a6", "sc1", "pp1",
        "ob1",
    ];
    let selected: Vec<String> = if args.is_empty() {
        all.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    let mut digest = serde_json::Map::new();
    for id in &selected {
        let value = match id.as_str() {
            "t1" => t1(),
            "s1" => s1(),
            "f1" => f1(),
            "f2" => f2(),
            "f3" => f3(),
            "f4" => f4(),
            "f5" => f5(),
            "a1" => a1(),
            "a2" => a2(),
            "a3" => a3(),
            "a4" => a4(),
            "a5" => a5(),
            "a6" => a6(),
            "sc1" => sc1(),
            "pp1" => pp1(),
            "ob1" => ob1(),
            other => {
                eprintln!("unknown experiment id {other:?}");
                continue;
            }
        };
        digest.insert(id.clone(), value);
    }
    let out = serde_json::to_string_pretty(&Value::Object(digest)).unwrap();
    let path = "target/experiments.json";
    std::fs::create_dir_all("target").ok();
    std::fs::write(path, &out).unwrap();
    println!("\n[digest written to {path}]");
}

fn header(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

// -------------------------------------------------------------------------
// T1 — Table 1: RMI in original Rotor and DGC-extended.
// -------------------------------------------------------------------------
fn t1() -> Value {
    header("T1", "Table 1 — RMI cost, plain remoting vs DGC-extended");
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "# RMI calls", "plain", "with DGC", "variation"
    );
    let mut rows = Vec::new();
    for &calls in &[10usize, 100, 500, 1000] {
        // Repeat to stabilize; keep the median-ish middle measurement.
        let time_of = |instrumented: bool| -> f64 {
            let mut best = f64::INFINITY;
            for rep in 0..3 {
                let t = Instant::now();
                let sys = run_table1_workload(calls, 10, instrumented, 7 + rep);
                let dt = t.elapsed().as_secs_f64() * 1e3;
                std::hint::black_box(sys);
                best = best.min(dt);
            }
            best
        };
        let plain = time_of(false);
        let with_dgc = time_of(true);
        let variation = (with_dgc - plain) / plain * 100.0;
        println!("{calls:>12} {plain:>12.2}ms {with_dgc:>12.2}ms {variation:>+9.2}%");
        rows.push(json!({
            "calls": calls,
            "plain_ms": plain,
            "with_dgc_ms": with_dgc,
            "variation_pct": variation,
        }));
    }
    println!("paper shape: 7–21% overhead for stub/scion creation");
    json!({ "rows": rows, "paper": "7-21% overhead" })
}

// -------------------------------------------------------------------------
// S1 — §4 serialization experiment.
// -------------------------------------------------------------------------
fn s1() -> Value {
    header(
        "S1",
        "§4 snapshot serialization — Rotor-like vs production-like codec",
    );
    let measure = |with_stubs: bool| -> (f64, f64, usize, usize) {
        let (heap, tables) = serialization_heap(10_000, with_stubs);
        let snap = capture(&heap, &tables, SimTime(0));
        let t = Instant::now();
        let v = VerboseCodec.encode(&snap);
        let verbose_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let c = CompactCodec.encode(&snap);
        let compact_ms = t.elapsed().as_secs_f64() * 1e3;
        (verbose_ms, compact_ms, v.len(), c.len())
    };
    let (v0, c0, vb0, cb0) = measure(false);
    let (v1, c1, vb1, cb1) = measure(true);
    println!(
        "{:<26} {:>12} {:>12} {:>9}",
        "workload", "verbose", "compact", "ratio"
    );
    println!(
        "{:<26} {v0:>10.2}ms {c0:>10.2}ms {:>8.1}x",
        "10k dummy objects",
        v0 / c0
    );
    println!(
        "{:<26} {v1:>10.2}ms {c1:>10.2}ms {:>8.1}x",
        "10k objects + 10k stubs",
        v1 / c1
    );
    let stub_overhead = (v1 - v0) / v0 * 100.0;
    println!("stub overhead on verbose path: {stub_overhead:+.1}% (paper: +73%)");
    println!(
        "bytes: verbose {vb0}/{vb1}, compact {cb0}/{cb1}; paper ratio ≈ 100x (26037ms vs 250-350ms)"
    );
    json!({
        "verbose_ms_plain": v0, "compact_ms_plain": c0,
        "verbose_ms_stubs": v1, "compact_ms_stubs": c1,
        "verbose_over_compact_plain": v0 / c0,
        "verbose_over_compact_stubs": v1 / c1,
        "stub_overhead_pct_verbose": stub_overhead,
        "paper": { "rotor_ms": 26037.0, "rotor_stubs_ms": 45125.0, "net_ms": "250-350", "stub_overhead_pct": 73.0 },
    })
}

// -------------------------------------------------------------------------
// F1 — Figure 1: extra converging dependency.
// -------------------------------------------------------------------------
fn f1() -> Value {
    header(
        "F1",
        "Figure 1 — converging dependency blocks collection until it dies",
    );
    let mut sys = System::new(4, GcConfig::manual(), NetConfig::instant(), 4);
    let fig = scenarios::fig1(&mut sys);
    sys.collect_to_fixpoint(10);
    let live_with_dep = sys.total_live_objects();
    let detected_with_dep = sys.metrics.cycles_detected;
    sys.remove_root(fig.w).unwrap();
    let rounds = sys.collect_to_fixpoint(20);
    let live_after = sys.total_live_objects();
    println!(
        "with live dependency w->x : live={live_with_dep}, cycles detected={detected_with_dep}"
    );
    println!("after w dies              : live={live_after} (reclaimed in {rounds} rounds)");
    println!(
        "safety violations          : {}",
        sys.metrics.safety_violations()
    );
    json!({
        "live_with_dependency": live_with_dep,
        "cycles_detected_with_dependency": detected_with_dep,
        "live_after_dependency_dropped": live_after,
        "safety_violations": sys.metrics.safety_violations(),
    })
}

// -------------------------------------------------------------------------
// F2 — Figure 2: inconsistent independent snapshots.
// -------------------------------------------------------------------------
fn f2() -> Value {
    header(
        "F2",
        "Figure 2 — snapshot race; counters must abort the detection",
    );
    let net = NetConfig {
        min_latency: SimDuration::from_millis(10),
        max_latency: SimDuration::from_millis(10),
        ..NetConfig::default()
    };
    let mut sys = System::new(3, GcConfig::manual(), net, 8);
    let fig = scenarios::fig2(&mut sys);
    sys.advance(SimDuration::from_millis(1));
    sys.take_snapshot(ProcId(1));
    sys.take_snapshot(ProcId(2));
    sys.initiate_detection(ProcId(1), fig.r_xy);
    sys.invoke(ProcId(0), fig.r_xy, InvokeSpec::oneway())
        .unwrap();
    sys.run_until(SimTime::from_millis(15));
    sys.add_root(fig.y).unwrap();
    sys.remove_root(fig.x).unwrap();
    sys.take_snapshot(ProcId(0));
    sys.drain_network();
    println!(
        "false cycles detected={}, IC aborts={}, live objects preserved={}",
        sys.metrics.cycles_detected,
        sys.metrics.detections_aborted_ic,
        sys.total_live_objects()
    );
    json!({
        "false_cycles": sys.metrics.cycles_detected,
        "ic_aborts": sys.metrics.detections_aborted_ic,
        "live_preserved": sys.total_live_objects(),
    })
}

// -------------------------------------------------------------------------
// F3 — Figure 3: the simple distributed garbage cycle.
// -------------------------------------------------------------------------
fn f3() -> Value {
    header("F3", "Figure 3 — 4-process garbage cycle, one CDM walk");
    let mut sys = System::new(4, GcConfig::manual(), NetConfig::instant(), 1);
    let fig = scenarios::fig3(&mut sys);
    sys.remove_root(fig.a).unwrap();
    sys.advance(SimDuration::from_millis(1));
    for p in 0..4 {
        sys.run_lgc(ProcId(p));
    }
    sys.drain_network();
    for p in 0..4 {
        sys.take_snapshot(ProcId(p));
    }
    let before = sys.metrics;
    sys.initiate_detection(fig.p2, fig.r_bf);
    sys.drain_network();
    let walk = sys.metrics.since(&before);
    let rounds = sys.collect_to_fixpoint(12);
    println!(
        "CDM messages for the walk  : {} (paper: 4 hops, steps 1-26)",
        walk.cdms_sent
    );
    println!("cycles found               : {}", walk.cycles_detected);
    println!("max CDM size               : {} bytes", walk.max_cdm_bytes);
    println!(
        "unravel rounds (acyclic)   : {rounds}; final live objects: {}",
        sys.total_live_objects()
    );
    json!({
        "cdm_messages": walk.cdms_sent,
        "cycles_detected": walk.cycles_detected,
        "max_cdm_bytes": walk.max_cdm_bytes,
        "unravel_rounds": rounds,
        "final_live": sys.total_live_objects(),
    })
}

// -------------------------------------------------------------------------
// F4 — Figure 4: mutually-linked cycles.
// -------------------------------------------------------------------------
fn f4() -> Value {
    header("F4", "Figure 4 — mutually-linked cycles across 6 processes");
    let (mut sys, proc, scion) = prepared_fig4(13);
    let before = sys.metrics;
    let found = run_detection(&mut sys, proc, scion);
    let walk = sys.metrics.since(&before);
    let rounds = sys.collect_to_fixpoint(25);
    println!("cycles concluded           : {found}");
    println!("CDM messages               : {}", walk.cdms_sent);
    println!(
        "stale branches ended       : {} (step 15 family), {} dropped at dead scions",
        walk.branches_no_new_info + walk.detections_terminated_no_new_info,
        walk.detections_dropped_no_scion,
    );
    println!(
        "final live objects         : {} after {rounds} rounds",
        sys.total_live_objects()
    );
    json!({
        "cycles_detected": found,
        "cdm_messages": walk.cdms_sent,
        "branch_terminations": walk.branches_no_new_info + walk.detections_terminated_no_new_info,
        "final_live": sys.total_live_objects(),
    })
}

// -------------------------------------------------------------------------
// F5 / A1 — the §3.2.1 race, with and without the counter barrier.
// -------------------------------------------------------------------------
fn run_fig5_race(cfg: GcConfig) -> System {
    let net = NetConfig {
        min_latency: SimDuration::from_millis(10),
        max_latency: SimDuration::from_millis(10),
        ..NetConfig::default()
    };
    let mut sys = System::new(5, cfg, net, 13);
    let fig = scenarios::fig5(&mut sys);
    sys.advance(SimDuration::from_millis(1));
    for p in 0..5 {
        sys.take_snapshot(ProcId(p));
    }
    sys.initiate_detection(ProcId(1), fig.r_bf);
    sys.invoke(
        ProcId(0),
        fig.r_bf,
        InvokeSpec {
            exports: vec![fig.m3],
            ..InvokeSpec::default()
        },
    )
    .unwrap();
    sys.run_until(SimTime::from_millis(12));
    let r_fm3 = sys
        .proc(ProcId(1))
        .heap
        .get(fig.f)
        .unwrap()
        .remote_refs()
        .find(|&r| r != fig.r_bf)
        .unwrap();
    sys.invoke(
        ProcId(1),
        r_fm3,
        InvokeSpec {
            exports: vec![fig.j],
            ..InvokeSpec::default()
        },
    )
    .unwrap();
    sys.run_until(SimTime::from_millis(24));
    sys.remove_root(fig.b).unwrap();
    sys.take_snapshot(ProcId(0));
    sys.drain_network();
    sys
}

fn f5() -> Value {
    header("F5", "Figure 5 — mutator/detector race; IC barrier aborts");
    let sys = run_fig5_race(GcConfig::manual());
    println!(
        "false cycles={}, IC aborts={}, unsafe deletions={}",
        sys.metrics.cycles_detected,
        sys.metrics.detections_aborted_ic,
        sys.metrics.unsafe_scion_deletes
    );
    json!({
        "false_cycles": sys.metrics.cycles_detected,
        "ic_aborts": sys.metrics.detections_aborted_ic,
        "unsafe_deletes": sys.metrics.unsafe_scion_deletes,
    })
}

fn a1() -> Value {
    header(
        "A1",
        "ablation — IC barrier disabled on the Figure 5 race (UNSAFE)",
    );
    let cfg = GcConfig {
        ic_barrier: false,
        ic_check_on_delivery: false,
        ..GcConfig::manual()
    };
    let sys = run_fig5_race(cfg);
    println!(
        "false cycles={}, unsafe scion deletions flagged by oracle={}",
        sys.metrics.cycles_detected, sys.metrics.unsafe_scion_deletes
    );
    println!("(with the barrier on, both are zero — see F5)");
    json!({
        "false_cycles": sys.metrics.cycles_detected,
        "unsafe_deletes": sys.metrics.unsafe_scion_deletes,
    })
}

// -------------------------------------------------------------------------
// A2 — branch-equality termination disabled.
// -------------------------------------------------------------------------
fn a2() -> Value {
    header(
        "A2",
        "ablation — §3.1 step 15 termination: strict vs slack vs none",
    );
    let run = |branch_termination: bool, slack: u32, max_hops: u32| -> (u64, u64, u64) {
        let mut sys = System::new(
            6,
            GcConfig {
                branch_termination,
                nongrowth_slack: slack,
                max_hops,
                ..GcConfig::manual()
            },
            NetConfig::instant(),
            2,
        );
        sys.check_safety = false;
        let fig = scenarios::fig4(&mut sys);
        sys.advance(SimDuration::from_millis(1));
        for p in 0..6 {
            sys.take_snapshot(ProcId(p));
        }
        sys.initiate_detection(fig.p2, fig.r_df);
        sys.drain_network();
        (
            sys.metrics.cdms_sent,
            sys.metrics.detections_dropped_hops,
            sys.metrics.cycles_detected,
        )
    };
    let (strict, _, strict_found) = run(true, 0, 512);
    let (slack, _, slack_found) = run(true, 8, 512);
    let (none, capped, _) = run(false, 0, 64);
    println!("CDMs, strict rule (paper)    : {strict} (cycles found: {strict_found})");
    println!("CDMs, slack 8 (default)      : {slack} (cycles found: {slack_found})");
    println!("CDMs, no rule (hop cap 64)   : {none}, hop-cap drops: {capped}");
    println!("(the strict rule is cheapest but provably incomplete on densely");
    println!(" shared garbage — found by tests/model_check.rs; slack restores");
    println!(" completeness at bounded extra traffic, budget caps the worst case)");
    json!({
        "cdms_strict": strict,
        "cdms_slack8": slack,
        "cdms_no_rule_cap64": none,
        "hop_cap_drops": capped,
    })
}

// -------------------------------------------------------------------------
// A3 — message-loss sweep.
// -------------------------------------------------------------------------
fn a3() -> Value {
    header(
        "A3",
        "ablation — GC-message loss sweep (completeness retained)",
    );
    println!(
        "{:>8} {:>18} {:>12}",
        "drop", "sim time to clean", "gc msgs"
    );
    let mut rows = Vec::new();
    for &drop in &[0.0f64, 0.1, 0.2, 0.3, 0.4, 0.5] {
        // Average over a few seeds (loss makes single runs noisy).
        let mut total_ms = 0u64;
        let mut msgs = 0u64;
        let seeds = 5u64;
        for seed in 0..seeds {
            let mut sys = System::new(4, GcConfig::default(), NetConfig::lossy(drop), 100 + seed);
            sys.check_safety = false;
            let fig = scenarios::fig3(&mut sys);
            sys.remove_root(fig.a).unwrap();
            while sys.total_live_objects() > 0 {
                sys.run_for(SimDuration::from_millis(200));
                assert!(sys.clock() < SimTime::from_millis(600_000), "drop={drop}");
            }
            total_ms += sys.clock().as_ticks() / 1_000;
            msgs += sys.net_stats().gc_sent;
        }
        let avg_ms = total_ms / seeds;
        let avg_msgs = msgs / seeds;
        println!("{:>7.0}% {:>16}ms {:>12}", drop * 100.0, avg_ms, avg_msgs);
        rows.push(json!({ "drop": drop, "avg_sim_ms": avg_ms, "avg_gc_msgs": avg_msgs }));
    }
    json!({ "rows": rows })
}

// -------------------------------------------------------------------------
// A4 — candidate-age heuristic sweep.
// -------------------------------------------------------------------------
fn a4() -> Value {
    header(
        "A4",
        "ablation — candidate age threshold: wasted work vs latency",
    );
    println!(
        "{:>10} {:>12} {:>14} {:>18}",
        "age (ms)", "detections", "wasted", "reclaim latency"
    );
    let mut rows = Vec::new();
    for &age_ms in &[0u64, 50, 150, 400, 1000] {
        let cfg = GcConfig {
            candidate_age: SimDuration::from_millis(age_ms),
            ..GcConfig::default()
        };
        let mut sys = System::new(4, cfg, NetConfig::default(), 3);
        sys.check_safety = false;
        let fig = scenarios::fig3(&mut sys);
        // Phase 1: the cycle is LIVE and busy for 2 simulated seconds; the
        // mutator touches it (invokes into P2) every 40 ms.
        for _ in 0..50 {
            sys.invoke(fig.p1, fig.r_bf, InvokeSpec::oneway()).unwrap();
            sys.run_for(SimDuration::from_millis(40));
        }
        let wasted = sys.metrics.detections_started;
        // Phase 2: cut the root; measure time to reclamation.
        let cut_at = sys.clock();
        sys.remove_root(fig.a).unwrap();
        while sys.total_live_objects() > 0 {
            sys.run_for(SimDuration::from_millis(100));
            assert!(sys.clock() < cut_at + SimDuration::from_millis(120_000));
        }
        let latency_ms = (sys.clock() - cut_at).as_millis();
        let total = sys.metrics.detections_started;
        println!("{age_ms:>10} {total:>12} {wasted:>14} {latency_ms:>16}ms");
        rows.push(json!({
            "age_ms": age_ms,
            "detections_total": total,
            "detections_while_live": wasted,
            "reclaim_latency_ms": latency_ms,
        }));
    }
    println!("(higher age ⇒ fewer wasted detections on busy data, slower reclamation)");
    json!({ "rows": rows })
}

// -------------------------------------------------------------------------
// A5 — baseline comparison.
// -------------------------------------------------------------------------
fn a5() -> Value {
    header(
        "A5",
        "DCDA vs Hughes vs back-tracing — messages to reclaim one ring",
    );
    println!(
        "{:>6} {:>16} {:>22} {:>22}",
        "span", "DCDA cdm msgs", "Hughes msgs (rounds)", "backtrace msgs (depth)"
    );
    let mut rows = Vec::new();
    for &span in &[2usize, 4, 8, 16] {
        // DCDA: one detection walk.
        let (mut sys, scion) = prepared_ring(span, 2, 41);
        let before = sys.metrics;
        assert_eq!(run_detection(&mut sys, ProcId(0), scion), 1);
        let dcda_msgs = sys.metrics.since(&before).cdms_sent;

        // Hughes: rounds of global stamping until reclaimed.
        let (mut sys, _) = prepared_ring(span, 2, 41);
        let mut hughes = HughesCollector::new((span + 2) as u64);
        let report = hughes.collect(&mut sys, (4 * span + 8) as u64);
        assert_eq!(sys.total_live_objects(), 0);

        // Back-tracing: one suspect trace.
        let (mut sys, scion) = prepared_ring(span, 2, 41);
        let tracer = Backtracer::new(&sys);
        let bt = tracer.trace(&mut sys, ProcId(0), scion);
        assert!(bt.garbage);

        println!(
            "{span:>6} {dcda_msgs:>16} {:>15} ({:>3}) {:>15} ({:>3})",
            report.total_messages(),
            report.rounds,
            bt.messages,
            bt.max_depth
        );
        rows.push(json!({
            "span": span,
            "dcda_cdm_messages": dcda_msgs,
            "hughes_messages": report.total_messages(),
            "hughes_rounds": report.rounds,
            "hughes_barrier_messages": report.barrier_messages,
            "backtrace_messages": bt.messages,
            "backtrace_depth": bt.max_depth,
            "backtrace_state_entries": bt.peak_state_entries,
        }));
    }
    println!("(DCDA: span messages, no barriers, no per-process state;");
    println!(" Hughes: continuous global work + a barrier per round;");
    println!(" back-tracing: 2 msgs/edge as a *nested synchronous RPC chain* of depth=span)");
    json!({ "rows": rows })
}

// -------------------------------------------------------------------------
// A6 — integration modes (Rotor-like vs OBIWAN-like).
// -------------------------------------------------------------------------
fn a6() -> Value {
    header(
        "A6",
        "VmIntegrated (Rotor) vs WeakRefMonitor (OBIWAN) — reclamation lag",
    );
    // The OBIWAN-style monitor runs every 100 ms here so its lag is
    // clearly separable from the LGC period (50 ms).
    // Average over several trials with varied drop instants so the result
    // is not an artifact of phase alignment with the periodic schedules.
    let run = |mode: IntegrationMode| -> u64 {
        let mut total = 0u64;
        let trials = 10u64;
        for trial in 0..trials {
            let cfg = GcConfig {
                integration: mode,
                monitor_period: SimDuration::from_millis(100),
                ..GcConfig::default()
            };
            let mut sys = System::new(2, cfg, NetConfig::default(), 6 + trial);
            sys.check_safety = false;
            let a = sys.alloc(ProcId(0), 1);
            sys.add_root(a).unwrap();
            let targets: Vec<_> = (0..50)
                .map(|i| {
                    let b = sys.alloc(ProcId(1), 1 + (i % 3) as u32);
                    (b, sys.create_remote_ref(a, b).unwrap())
                })
                .collect();
            sys.run_for(SimDuration::from_millis(300 + 13 * trial));
            for (_, r) in &targets {
                sys.drop_remote_ref(a, *r).unwrap();
            }
            let cut = sys.clock();
            // Measure until every scion is gone (the reference-listing
            // event the integration mode gates) — object reclamation
            // follows at the next LGC either way.
            while sys.total_scions() > 0 {
                sys.run_for(SimDuration::from_millis(1));
                assert!(sys.clock() < cut + SimDuration::from_millis(60_000));
            }
            total += (sys.clock() - cut).as_millis();
        }
        total / trials
    };
    let vm_ms = run(IntegrationMode::VmIntegrated);
    let weak_ms = run(IntegrationMode::WeakRefMonitor);
    println!("VmIntegrated  : {vm_ms} ms (mean of 10) until 50 dropped refs lose their scions");
    println!("WeakRefMonitor: {weak_ms} ms (mean of 10)");
    println!("(user-level integration adds up to one monitor period of lag — the OBIWAN trade)");
    json!({ "vm_integrated_ms": vm_ms, "weakref_monitor_ms": weak_ms })
}

// -------------------------------------------------------------------------
// SC1 — scalability with cycle span.
// -------------------------------------------------------------------------
fn sc1() -> Value {
    header("SC1", "scalability — detection cost vs processes spanned");
    println!(
        "{:>6} {:>12} {:>16} {:>16}",
        "span", "cdm msgs", "detect sim-time", "cdm bytes max"
    );
    let mut rows = Vec::new();
    for &span in &[2usize, 4, 8, 16, 32, 64] {
        let mut sys = System::new(span, GcConfig::manual(), NetConfig::default(), 53);
        sys.check_safety = false;
        let ids: Vec<ProcId> = (0..span as u16).map(ProcId).collect();
        let ring = scenarios::ring(&mut sys, &ids, 1, false);
        sys.advance(SimDuration::from_millis(1));
        for p in 0..span {
            sys.take_snapshot(ProcId(p as u16));
        }
        let t0 = sys.clock();
        let before = sys.metrics;
        sys.initiate_detection(ProcId(0), ring.refs[0]);
        sys.drain_network();
        let walk = sys.metrics.since(&before);
        let dt = (sys.clock() - t0).as_millis();
        assert_eq!(walk.cycles_detected, 1, "span {span}");
        println!(
            "{span:>6} {:>12} {:>14}ms {:>16}",
            walk.cdms_sent, dt, walk.max_cdm_bytes
        );
        rows.push(json!({
            "span": span,
            "cdm_messages": walk.cdms_sent,
            "detect_sim_ms": dt,
            "max_cdm_bytes": walk.max_cdm_bytes,
        }));
    }
    println!("(messages = span: linear; only spanned processes participate)");
    json!({ "rows": rows })
}

// -------------------------------------------------------------------------
// PP1 — per-process metrics attribution on a skewed workload.
// -------------------------------------------------------------------------
fn pp1() -> Value {
    header("PP1", "per-process attribution — skewed cycle placement");
    // Six processes, but the cycles are piled onto the low-numbered ones:
    // rings [P0,P1], [P0,P1,P2], … up to the full span, so P0 sits on every
    // cycle while P5 sits on one. A global ledger hides that skew; the
    // per-process ledgers must expose it.
    let mut sys = System::new(6, GcConfig::manual(), NetConfig::default(), 71);
    for span in 2..=6u16 {
        let ids: Vec<ProcId> = (0..span).map(ProcId).collect();
        scenarios::ring(&mut sys, &ids, 2, false);
    }
    assert!(sys.oracle_live().is_empty(), "workload must be all garbage");
    sys.config_mut().candidate_age = SimDuration::ZERO;
    sys.config_mut().candidate_backoff = SimDuration::ZERO;
    sys.collect_to_fixpoint(20);
    assert_eq!(sys.total_live_objects(), 0, "skewed rings all reclaimed");

    println!(
        "{:>5} {:>9} {:>10} {:>9} {:>9} {:>10} {:>10} {:>8}",
        "proc", "lgc_runs", "reclaimed", "nss_sent", "cdm_sent", "cdm_deliv", "det_start", "cycles"
    );
    let mut rows = Vec::new();
    for p in 0..6u16 {
        let m = sys.metrics_for(ProcId(p));
        println!(
            "{:>5} {:>9} {:>10} {:>9} {:>9} {:>10} {:>10} {:>8}",
            format!("P{p}"),
            m.lgc_runs,
            m.objects_reclaimed,
            m.nss_sent,
            m.cdms_sent,
            m.cdms_delivered,
            m.detections_started,
            m.cycles_detected,
        );
        rows.push(json!({
            "proc": p,
            "lgc_runs": m.lgc_runs,
            "objects_reclaimed": m.objects_reclaimed,
            "nss_sent": m.nss_sent,
            "cdms_sent": m.cdms_sent,
            "cdms_delivered": m.cdms_delivered,
            "detections_started": m.detections_started,
            "cycles_detected": m.cycles_detected,
        }));
    }
    let t = &sys.metrics;
    println!(
        "{:>5} {:>9} {:>10} {:>9} {:>9} {:>10} {:>10} {:>8}",
        "all",
        t.lgc_runs,
        t.objects_reclaimed,
        t.nss_sent,
        t.cdms_sent,
        t.cdms_delivered,
        t.detections_started,
        t.cycles_detected,
    );
    // The skew the table exists to show: the process on every ring does
    // strictly more CDM work than the process on only one.
    let busy = sys.metrics_for(ProcId(0)).cdms_delivered;
    let idle = sys.metrics_for(ProcId(5)).cdms_delivered;
    println!("(P0 is on all 5 rings, P5 on 1: deliveries {busy} vs {idle})");
    json!({ "rows": rows, "p0_cdms_delivered": busy, "p5_cdms_delivered": idle })
}

// -------------------------------------------------------------------------
// OB1 — detections-only tracing via TraceFilter.
// -------------------------------------------------------------------------
fn ob1() -> Value {
    header(
        "OB1",
        "trace filtering — detections-only run vs full recording",
    );
    // The same all-garbage workload recorded twice: once with every event
    // family on, once with only the CDM-lifecycle family passing the
    // filter. The filtered run keeps complete detection forensics (paths
    // still reconstruct and balance) at a fraction of the event volume —
    // and the phase histograms still fill, because durations are recorded
    // beside the ring, not through it.
    let run = |filter: TraceFilter| -> (System, Value) {
        let mut sys = System::new(
            5,
            GcConfig {
                trace: TraceConfig {
                    enabled: true,
                    filter,
                    ..TraceConfig::default()
                },
                ..GcConfig::manual()
            },
            NetConfig::instant(),
            29,
        );
        for span in [3u16, 4, 5] {
            let ids: Vec<ProcId> = (0..span).map(ProcId).collect();
            scenarios::ring(&mut sys, &ids, 2, false);
        }
        sys.collect_to_fixpoint(20);
        assert_eq!(sys.total_live_objects(), 0);
        let trace = sys.trace();
        let mut families = serde_json::Map::new();
        for r in &trace.events {
            let kind = r.event.kind().to_string();
            let n = match families.get(&kind) {
                Some(Value::Number(serde_json::Number::U64(n))) => *n,
                _ => 0,
            };
            families.insert(kind, json!(n + 1));
        }
        let stats = json!({
            "events": trace.events.len(),
            "detections": trace.detection_ids().len(),
            "cycles": trace.detected_cycles().len(),
            "phase_samples": trace.merged_phases().total_count(),
            "families": Value::Object(families),
        });
        (sys, stats)
    };

    let (_, full) = run(TraceFilter::default());
    let (sys, filtered) = run(TraceFilter {
        detections: true,
        nss: false,
        phases: false,
        quiescence: false,
        mutator: false,
    });
    let get = |v: &Value, k: &str| -> u64 {
        match v {
            Value::Object(m) => match m.get(k) {
                Some(Value::Number(serde_json::Number::U64(n))) => *n,
                _ => 0,
            },
            _ => 0,
        }
    };
    println!(
        "{:>12} {:>9} {:>12} {:>8} {:>14}",
        "recording", "events", "detections", "cycles", "phase_samples"
    );
    for (name, v) in [("full", &full), ("filtered", &filtered)] {
        println!(
            "{:>12} {:>9} {:>12} {:>8} {:>14}",
            name,
            get(v, "events"),
            get(v, "detections"),
            get(v, "cycles"),
            get(v, "phase_samples"),
        );
    }
    assert!(
        get(&filtered, "events") < get(&full, "events"),
        "the filter must actually reduce event volume"
    );
    assert!(
        get(&filtered, "phase_samples") > 0,
        "histograms must keep filling under a detections-only filter"
    );
    println!(
        "(filtered run still renders full CDM paths; {} Prometheus chars)",
        sys.to_prometheus().len()
    );
    json!({ "full": full, "filtered": filtered })
}
