//! F3 — detection cost on simple distributed cycles (Figure 3 family):
//! one full CDM walk around a garbage ring, as a function of per-process
//! subgraph size. The walk is one message per inter-process edge — cost
//! independent of how many *objects* each process holds (summarization
//! already collapsed them).

use acdgc_bench::{prepared_ring, run_detection};
use acdgc_model::ProcId;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_detection");
    group.sample_size(20);
    for &objs in &[1usize, 10, 100] {
        group.bench_with_input(
            BenchmarkId::new("ring4_detect", format!("{objs}obj_per_proc")),
            &objs,
            |b, &objs| {
                b.iter_batched(
                    || prepared_ring(4, objs, 11),
                    |(mut sys, scion)| {
                        assert_eq!(run_detection(&mut sys, ProcId(0), scion), 1);
                        sys
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    // Setup cost for reference: summarization is where graph size matters.
    for &objs in &[1usize, 10, 100] {
        group.bench_with_input(
            BenchmarkId::new("ring4_prepare", format!("{objs}obj_per_proc")),
            &objs,
            |b, &objs| {
                b.iter(|| prepared_ring(4, objs, 11));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
