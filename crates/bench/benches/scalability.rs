//! SC1 — scalability of one detection with the number of processes the
//! cycle spans: the CDM walk is one message per inter-process reference,
//! so cost grows linearly with span and involves *only* the spanned
//! processes (no global phase).

use acdgc_bench::{prepared_ring, run_detection};
use acdgc_model::ProcId;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability_span");
    group.sample_size(10);
    for &span in &[2usize, 4, 8, 16, 32, 64] {
        group.bench_with_input(BenchmarkId::new("detect", span), &span, |b, &span| {
            b.iter_batched(
                || prepared_ring(span, 1, 53),
                |(mut sys, scion)| {
                    assert_eq!(run_detection(&mut sys, ProcId(0), scion), 1);
                    sys
                },
                BatchSize::SmallInput,
            );
        });
    }
    // Uninvolved processes do no work: detection over a 4-ring embedded in
    // a much larger system costs the same walk.
    for &total in &[4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("detect_ring4_in_system_of", total),
            &total,
            |b, &total| {
                b.iter_batched(
                    || {
                        let mut sys = acdgc_bench::bench_system(total, 53);
                        let ids: Vec<ProcId> = (0..4).map(ProcId).collect();
                        let ring = acdgc_sim::scenarios::ring(&mut sys, &ids, 1, false);
                        sys.advance(acdgc_model::SimDuration::from_millis(1));
                        for p in 0..4u16 {
                            sys.take_snapshot(ProcId(p));
                        }
                        (sys, ring.refs[0])
                    },
                    |(mut sys, scion)| {
                        assert_eq!(run_detection(&mut sys, ProcId(0), scion), 1);
                        sys
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
