//! T1 — Table 1: RMI cost in "original Rotor" vs "Rotor with DGC".
//!
//! N remote invocations, each exporting 10 references, client and server
//! co-located (no network delay masks the bookkeeping). The DGC-extended
//! variant pays stub/scion creation plus invocation-counter maintenance;
//! the paper measured 7–21% overhead and this bench reproduces the shape
//! (single-digit to low-double-digit percentage).

use acdgc_bench::run_table1_workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_rmi");
    group.sample_size(10);
    for &calls in &[10usize, 100, 500, 1000] {
        group.bench_with_input(
            BenchmarkId::new("rotor_plain", calls),
            &calls,
            |b, &calls| {
                b.iter(|| black_box(run_table1_workload(calls, 10, false, 7)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rotor_with_dgc", calls),
            &calls,
            |b, &calls| {
                b.iter(|| black_box(run_table1_workload(calls, 10, true, 7)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
