//! Graph summarization cost (§3 "Graph Summarization" / §4): transforming
//! a process snapshot into the scion/stub association form, as a function
//! of object count and of scion count (the per-scion BFS dominates).

use acdgc_bench::serialization_heap;
use acdgc_heap::{Heap, HeapRef};
use acdgc_model::{ObjId, ProcId, RefId, SimTime};
use acdgc_remoting::RemotingTables;
use acdgc_snapshot::{summarize, IncrementalSummarizer, SccEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// CI smoke mode (`ACDGC_BENCH_SMOKE=1`): run only the `disjoint_chains`
/// group, one topology, minimum samples — proves the bench harness builds
/// and runs without paying measurement time. The vendored criterion
/// stand-in accepts-and-ignores CLI filters, so the gate is an env var.
fn smoke() -> bool {
    std::env::var_os("ACDGC_BENCH_SMOKE").is_some()
}

/// A heap with `n` objects in `s` scion-rooted chains, each chain ending
/// in a stub: summarization does `s` BFS passes of `n/s` objects.
fn scion_heavy_heap(n: usize, s: usize) -> (Heap, RemotingTables) {
    let proc = ProcId(0);
    let mut heap = Heap::new(proc);
    let mut tables = RemotingTables::new(proc);
    let per_chain = (n / s).max(1);
    for chain in 0..s {
        let ids: Vec<ObjId> = (0..per_chain).map(|_| heap.alloc(1)).collect();
        for pair in ids.windows(2) {
            heap.add_ref(pair[0], HeapRef::Local(pair[1].slot)).unwrap();
        }
        let scion_ref = RefId(chain as u64);
        let stub_ref = RefId((s + chain) as u64);
        tables.add_scion(scion_ref, ids[0], ProcId(1), SimTime(0));
        tables.add_stub(stub_ref, ObjId::new(ProcId(1), chain as u32, 0), SimTime(0));
        heap.add_ref(*ids.last().unwrap(), HeapRef::Remote(stub_ref))
            .unwrap();
    }
    (heap, tables)
}

/// The per-scion formulation's worst case: `s` scion-targeted entry
/// objects all feeding one shared chain of `n - s` objects that ends in a
/// spread of stubs. Every one of the `s` reference BFS passes re-walks the
/// whole shared chain (O(s·n) object visits); the SCC engine walks it
/// once.
fn converging_scion_heap(n: usize, s: usize) -> (Heap, RemotingTables) {
    let proc = ProcId(0);
    let mut heap = Heap::new(proc);
    let mut tables = RemotingTables::new(proc);
    let shared: Vec<ObjId> = (0..n.saturating_sub(s).max(1))
        .map(|_| heap.alloc(1))
        .collect();
    for pair in shared.windows(2) {
        heap.add_ref(pair[0], HeapRef::Local(pair[1].slot)).unwrap();
    }
    let stubs = 64.min(shared.len());
    for i in 0..stubs {
        let r = RefId((s + i) as u64);
        tables.add_stub(r, ObjId::new(ProcId(1), i as u32, 0), SimTime(0));
        heap.add_ref(shared[shared.len() - 1 - i], HeapRef::Remote(r))
            .unwrap();
    }
    for i in 0..s {
        let entry = heap.alloc(1);
        heap.add_ref(entry, HeapRef::Local(shared[0].slot)).unwrap();
        tables.add_scion(RefId(i as u64), entry, ProcId(1), SimTime(0));
    }
    (heap, tables)
}

fn bench_summarize(c: &mut Criterion) {
    if smoke() {
        return;
    }
    let mut group = c.benchmark_group("summarization");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let (heap, tables) = serialization_heap(n, true);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("chain_with_stubs", n), &n, |b, _| {
            b.iter(|| black_box(summarize(&heap, &tables, 1, SimTime(0))))
        });
    }
    for &scions in &[1usize, 10, 100] {
        let (heap, tables) = scion_heavy_heap(10_000, scions);
        group.bench_with_input(
            BenchmarkId::new("10k_objs_by_scion_count", scions),
            &scions,
            |b, _| b.iter(|| black_box(summarize(&heap, &tables, 1, SimTime(0)))),
        );
    }
    // The lazy/incremental regime of §4: re-summarizing after a quiet
    // period (only invocation counters moved) skips every per-scion BFS.
    for &scions in &[10usize, 100] {
        let (heap, tables) = scion_heavy_heap(10_000, scions);
        let mut inc = IncrementalSummarizer::new(ProcId(0));
        inc.summarize(&heap, &tables, 1, SimTime(0));
        let mut version = 1;
        group.bench_with_input(
            BenchmarkId::new("incremental_quiet_resummarize", scions),
            &scions,
            |b, _| {
                b.iter(|| {
                    version += 1;
                    black_box(inc.summarize(&heap, &tables, version, SimTime(version)))
                })
            },
        );
    }
    // Engine vs reference on the scion-heavy topologies that motivate the
    // SCC engine (acceptance target: engine ≥5× faster at n=10_000,
    // s=n/10 on the converging topology). The disjoint-chain comparison
    // isolates the reference's per-scion setup overhead; the converging
    // one exercises its O(s·(V+E)) re-traversal.
    for &(n, s) in &[(10_000usize, 1_000usize), (10_000, 100)] {
        let disjoint = scion_heavy_heap(n, s);
        let converging = converging_scion_heap(n, s);
        for (label, (heap, tables)) in [("disjoint", &disjoint), ("converging", &converging)] {
            group.bench_with_input(
                BenchmarkId::new(format!("reference_{label}"), format!("{n}x{s}")),
                &s,
                |b, _| b.iter(|| black_box(summarize(heap, tables, 1, SimTime(0)))),
            );
            let mut engine = SccEngine::new();
            group.bench_with_input(
                BenchmarkId::new(format!("engine_{label}"), format!("{n}x{s}")),
                &s,
                |b, _| b.iter(|| black_box(engine.summarize(heap, tables, 1, SimTime(0)))),
            );
            let mut adaptive = SccEngine::new();
            group.bench_with_input(
                BenchmarkId::new(format!("adaptive_{label}"), format!("{n}x{s}")),
                &s,
                |b, _| {
                    b.iter(|| black_box(adaptive.summarize_adaptive(heap, tables, 1, SimTime(0))))
                },
            );
        }
    }
    group.finish();
}

/// The engine-loses topology, isolated: many short disjoint chains. The
/// reference summarizer's per-scion BFS touches each chain once (O(V)
/// total), while the dense engine pays a scion-count-wide bitset union per
/// component. Adaptive dispatches to the engine here but with chain
/// aliasing (out-degree ≤ 1 components inherit their successor's reach set
/// by reference), which removes exactly that width term — it must land
/// within 10% of the better of the two dedicated paths.
fn bench_disjoint_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("disjoint_chains");
    group.sample_size(if smoke() { 2 } else { 10 });
    let cases: &[(usize, usize)] = if smoke() {
        &[(1_000, 100)]
    } else {
        &[(10_000, 1_000), (10_000, 100), (50_000, 5_000)]
    };
    for &(n, s) in cases {
        let (heap, tables) = scion_heavy_heap(n, s);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("reference", format!("{n}x{s}")),
            &s,
            |b, _| b.iter(|| black_box(summarize(&heap, &tables, 1, SimTime(0)))),
        );
        let mut engine = SccEngine::new();
        group.bench_with_input(
            BenchmarkId::new("engine", format!("{n}x{s}")),
            &s,
            |b, _| b.iter(|| black_box(engine.summarize(&heap, &tables, 1, SimTime(0)))),
        );
        let mut adaptive = SccEngine::new();
        group.bench_with_input(
            BenchmarkId::new("adaptive", format!("{n}x{s}")),
            &s,
            |b, _| b.iter(|| black_box(adaptive.summarize_adaptive(&heap, &tables, 1, SimTime(0)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_summarize, bench_disjoint_chains);
criterion_main!(benches);
