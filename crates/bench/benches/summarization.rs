//! Graph summarization cost (§3 "Graph Summarization" / §4): transforming
//! a process snapshot into the scion/stub association form, as a function
//! of object count and of scion count (the per-scion BFS dominates).

use acdgc_bench::serialization_heap;
use acdgc_heap::{Heap, HeapRef};
use acdgc_remoting::RemotingTables;
use acdgc_snapshot::{summarize, IncrementalSummarizer};
use acdgc_model::{ObjId, ProcId, RefId, SimTime};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// A heap with `n` objects in `s` scion-rooted chains, each chain ending
/// in a stub: summarization does `s` BFS passes of `n/s` objects.
fn scion_heavy_heap(n: usize, s: usize) -> (Heap, RemotingTables) {
    let proc = ProcId(0);
    let mut heap = Heap::new(proc);
    let mut tables = RemotingTables::new(proc);
    let per_chain = (n / s).max(1);
    for chain in 0..s {
        let ids: Vec<ObjId> = (0..per_chain).map(|_| heap.alloc(1)).collect();
        for pair in ids.windows(2) {
            heap.add_ref(pair[0], HeapRef::Local(pair[1].slot)).unwrap();
        }
        let scion_ref = RefId(chain as u64);
        let stub_ref = RefId((s + chain) as u64);
        tables.add_scion(scion_ref, ids[0], ProcId(1), SimTime(0));
        tables.add_stub(stub_ref, ObjId::new(ProcId(1), chain as u32, 0), SimTime(0));
        heap.add_ref(*ids.last().unwrap(), HeapRef::Remote(stub_ref))
            .unwrap();
    }
    (heap, tables)
}

fn bench_summarize(c: &mut Criterion) {
    let mut group = c.benchmark_group("summarization");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let (heap, tables) = serialization_heap(n, true);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("chain_with_stubs", n),
            &n,
            |b, _| b.iter(|| black_box(summarize(&heap, &tables, 1, SimTime(0)))),
        );
    }
    for &scions in &[1usize, 10, 100] {
        let (heap, tables) = scion_heavy_heap(10_000, scions);
        group.bench_with_input(
            BenchmarkId::new("10k_objs_by_scion_count", scions),
            &scions,
            |b, _| b.iter(|| black_box(summarize(&heap, &tables, 1, SimTime(0)))),
        );
    }
    // The lazy/incremental regime of §4: re-summarizing after a quiet
    // period (only invocation counters moved) skips every per-scion BFS.
    for &scions in &[10usize, 100] {
        let (heap, tables) = scion_heavy_heap(10_000, scions);
        let mut inc = IncrementalSummarizer::new(ProcId(0));
        inc.summarize(&heap, &tables, 1, SimTime(0));
        let mut version = 1;
        group.bench_with_input(
            BenchmarkId::new("incremental_quiet_resummarize", scions),
            &scions,
            |b, _| {
                b.iter(|| {
                    version += 1;
                    black_box(inc.summarize(&heap, &tables, version, SimTime(version)))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_summarize);
criterion_main!(benches);
