//! A3 — message-loss sweep: wall time for the periodic stack to reclaim a
//! Figure-3 cycle under increasing GC-message drop rates. Loss never
//! breaks collection; it only stretches the time to reclamation (more
//! rounds of regenerated protocol traffic).

use acdgc_model::{GcConfig, NetConfig, SimDuration};
use acdgc_sim::{scenarios, System};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn collect_under_loss(drop: f64, seed: u64) -> u64 {
    let mut sys = System::new(4, GcConfig::default(), NetConfig::lossy(drop), seed);
    sys.check_safety = false;
    let fig = scenarios::fig3(&mut sys);
    sys.remove_root(fig.a).unwrap();
    let mut waited = 0u64;
    while sys.total_live_objects() > 0 && waited < 120_000 {
        sys.run_for(SimDuration::from_millis(500));
        waited += 500;
    }
    assert_eq!(sys.total_live_objects(), 0, "drop={drop}");
    waited
}

fn bench_loss(c: &mut Criterion) {
    let mut group = c.benchmark_group("loss_sweep");
    group.sample_size(10);
    for &drop in &[0.0f64, 0.1, 0.3, 0.5] {
        group.bench_with_input(
            BenchmarkId::new("collect_fig3", format!("drop{:02}", (drop * 100.0) as u32)),
            &drop,
            |b, &drop| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    collect_under_loss(drop, seed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_loss);
criterion_main!(benches);
