//! A5 — DCDA vs the complete-DGC baselines of §5: wall time to reclaim a
//! garbage ring spanning `n` processes. Message-count comparisons (where
//! the asymmetry is starkest) are printed by `experiments a5`.

use acdgc_baselines::{Backtracer, HughesCollector};
use acdgc_bench::{prepared_ring, run_detection};
use acdgc_model::ProcId;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_collectors");
    group.sample_size(10);
    for &span in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("dcda", span), &span, |b, &span| {
            b.iter_batched(
                || prepared_ring(span, 2, 41),
                |(mut sys, scion)| {
                    run_detection(&mut sys, ProcId(0), scion);
                    sys.collect_to_fixpoint(2 * span + 4);
                    assert_eq!(sys.total_live_objects(), 0);
                    sys
                },
                BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("hughes", span), &span, |b, &span| {
            b.iter_batched(
                || prepared_ring(span, 2, 41),
                |(mut sys, _scion)| {
                    let mut hughes = HughesCollector::new((span + 2) as u64);
                    hughes.collect(&mut sys, (4 * span + 8) as u64);
                    assert_eq!(sys.total_live_objects(), 0);
                    sys
                },
                BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("backtrace", span), &span, |b, &span| {
            b.iter_batched(
                || prepared_ring(span, 2, 41),
                |(mut sys, _scion)| {
                    Backtracer::collect_all(&mut sys);
                    for _ in 0..span {
                        sys.gc_round();
                    }
                    assert_eq!(sys.total_live_objects(), 0);
                    sys
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
