//! Structured-tracing overhead on a detection-dense micro-workload.
//!
//! Three variants of the same workload (a multi-process garbage ring with
//! a detection run to completion per iteration):
//!
//! * `disabled` — `TraceConfig::default()`: one bool test per would-be
//!   event, the cost every production run pays;
//! * `enabled`  — full recording of every family;
//! * `filtered` — recording on, but only the detections family passes the
//!   [`TraceFilter`] (NSS / phases / quiescence suppressed before any
//!   event is built; phase histograms still fed).
//!
//! `BENCH_trace_overhead.json` at the repo root records the medians; the
//! acceptance criterion is the disabled path staying within noise of the
//! untraced baseline in `BENCH_summarization.json`-era runs.

use acdgc_model::{GcConfig, NetConfig, ProcId, SimDuration, TraceConfig, TraceFilter};
use acdgc_sim::{scenarios, System};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

/// The detection-dense fixture: a 6-process ring of garbage cycles, LGC'd
/// and snapshotted so detections can fire immediately.
fn ring_system(trace: TraceConfig) -> (System, acdgc_model::RefId) {
    let cfg = GcConfig {
        trace,
        ..GcConfig::manual()
    };
    let mut sys = System::new(6, cfg, NetConfig::instant(), 17);
    sys.check_safety = false;
    let ids: Vec<ProcId> = (0..6).map(ProcId).collect();
    let ring = scenarios::ring(&mut sys, &ids, 4, false);
    sys.advance(SimDuration::from_millis(1));
    for p in 0..6 {
        sys.run_lgc(ProcId(p));
    }
    sys.drain_network();
    sys.snapshot_all();
    (sys, ring.refs[0])
}

fn detections_only() -> TraceConfig {
    TraceConfig {
        enabled: true,
        filter: TraceFilter {
            detections: true,
            nss: false,
            phases: false,
            quiescence: false,
        },
        ..TraceConfig::default()
    }
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(40);
    let variants: [(&str, TraceConfig); 3] = [
        ("disabled", TraceConfig::default()),
        ("enabled", TraceConfig::on()),
        ("filtered", detections_only()),
    ];
    for (name, trace) in variants {
        group.bench_with_input(BenchmarkId::new("ring_detection", name), &(), |b, _| {
            // Detections consume their cycle, so each iteration gets a
            // fresh prepared system; criterion times only the detection
            // walk, where every hop records CDM events when tracing
            // allows it.
            b.iter_batched(
                || ring_system(trace),
                |(mut sys, scion)| {
                    sys.initiate_detection(ProcId(0), scion);
                    sys.drain_network();
                    assert!(sys.metrics.cycles_detected >= 1);
                    sys
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
