//! Structured-tracing overhead on a detection-dense micro-workload.
//!
//! Three variants of the same workload (a multi-process garbage ring with
//! a detection run to completion per iteration):
//!
//! * `disabled` — `TraceConfig::default()`: one bool test per would-be
//!   event, the cost every production run pays;
//! * `enabled`  — full recording of every family;
//! * `filtered` — recording on, but only the detections family passes the
//!   [`TraceFilter`] (NSS / phases / quiescence suppressed before any
//!   event is built; phase histograms still fed);
//! * `lamport_on` — full recording plus causal stamps: one extra relaxed
//!   atomic tick per recorded event and a clock read per GC send.
//!
//! A second group measures time-series telemetry the same way: steady
//! rounds of a live anchored ring with [`SamplingConfig`] off (one bool
//! test per round — the production default) versus on at the densest
//! cadence (`sample_every = 1`, every round copies all ledgers and walks
//! every heap's stats into the rings).
//!
//! `BENCH_trace_overhead.json` at the repo root records the medians; the
//! acceptance criterion is the disabled paths staying within noise of the
//! untraced baseline in `BENCH_summarization.json`-era runs.

use acdgc_model::{
    GcConfig, NetConfig, ProcId, SamplingConfig, SimDuration, TraceConfig, TraceFilter,
};
use acdgc_sim::{scenarios, System};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

/// CI smoke mode (`ACDGC_BENCH_SMOKE=1`): minimum samples, same variants —
/// proves the harness builds and runs without paying measurement time.
fn smoke() -> bool {
    std::env::var_os("ACDGC_BENCH_SMOKE").is_some()
}

/// The detection-dense fixture: a 6-process ring of garbage cycles, LGC'd
/// and snapshotted so detections can fire immediately.
fn ring_system(trace: TraceConfig) -> (System, acdgc_model::RefId) {
    let cfg = GcConfig {
        trace,
        ..GcConfig::manual()
    };
    let mut sys = System::new(6, cfg, NetConfig::instant(), 17);
    sys.check_safety = false;
    let ids: Vec<ProcId> = (0..6).map(ProcId).collect();
    let ring = scenarios::ring(&mut sys, &ids, 4, false);
    sys.advance(SimDuration::from_millis(1));
    for p in 0..6 {
        sys.run_lgc(ProcId(p));
    }
    sys.drain_network();
    sys.snapshot_all();
    (sys, ring.refs[0])
}

fn detections_only() -> TraceConfig {
    TraceConfig {
        enabled: true,
        filter: TraceFilter {
            detections: true,
            nss: false,
            phases: false,
            quiescence: false,
            mutator: false,
        },
        ..TraceConfig::default()
    }
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(if smoke() { 2 } else { 40 });
    let variants: [(&str, TraceConfig); 4] = [
        ("disabled", TraceConfig::default()),
        ("enabled", TraceConfig::on()),
        ("filtered", detections_only()),
        ("lamport_on", TraceConfig::causal()),
    ];
    for (name, trace) in variants {
        group.bench_with_input(BenchmarkId::new("ring_detection", name), &(), |b, _| {
            // Detections consume their cycle, so each iteration gets a
            // fresh prepared system; criterion times only the detection
            // walk, where every hop records CDM events when tracing
            // allows it.
            b.iter_batched(
                || ring_system(trace),
                |(mut sys, scion)| {
                    sys.initiate_detection(ProcId(0), scion);
                    sys.drain_network();
                    assert!(sys.metrics.cycles_detected >= 1);
                    sys
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Steady-state fixture for the sampling group: a live anchored ring, so
/// every round does real LGC/snapshot/scan work but frees nothing.
fn live_ring_system(sampling: SamplingConfig) -> System {
    let cfg = GcConfig {
        sampling,
        ..GcConfig::manual()
    };
    let mut sys = System::new(6, cfg, NetConfig::instant(), 17);
    sys.check_safety = false;
    let ids: Vec<ProcId> = (0..6).map(ProcId).collect();
    scenarios::ring(&mut sys, &ids, 200, true);
    // Settle: first round pays one-time summarizer scratch allocation.
    sys.gc_round();
    sys
}

fn bench_sampling_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(if smoke() { 2 } else { 40 });
    let variants: [(&str, SamplingConfig); 2] = [
        ("sampling_off", SamplingConfig::default()),
        (
            // Densest cadence: every round copies ledgers and heap stats
            // into the rings — the worst case a user can configure.
            "sampling_on",
            SamplingConfig {
                enabled: true,
                sample_every: 1,
                capacity: 256,
            },
        ),
    ];
    for (name, sampling) in variants {
        let mut sys = live_ring_system(sampling);
        group.bench_with_input(BenchmarkId::new("gc_round", name), &(), |b, _| {
            b.iter(|| {
                sys.gc_round();
                black_box(sys.metrics.snapshots)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_overhead, bench_sampling_overhead);
criterion_main!(benches);
