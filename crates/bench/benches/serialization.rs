//! S1 — the §4 serialization experiment: 10 000 linked dummy objects,
//! with and without one remote reference per object, encoded by the
//! Rotor-like [`VerboseCodec`] and the production-like [`CompactCodec`].
//!
//! Paper shape to reproduce: the verbose path is orders of magnitude
//! slower than the compact one (26 037 ms vs 250–350 ms ≈ 100×), and
//! adding 10 000 stubs costs the verbose path ~+73% while "serializing a
//! remote reference is faster than serializing an additional dummy
//! object".

use acdgc_bench::serialization_heap;
use acdgc_model::SimTime;
use acdgc_snapshot::{capture, CompactCodec, SnapshotCodec, VerboseCodec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const N: usize = 10_000;

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("serialization_encode");
    group.sample_size(10);
    for &with_stubs in &[false, true] {
        let (heap, tables) = serialization_heap(N, with_stubs);
        let snap = capture(&heap, &tables, SimTime(0));
        let label = if with_stubs {
            "10k_objs_10k_stubs"
        } else {
            "10k_objs"
        };
        group.throughput(Throughput::Elements(N as u64));
        group.bench_with_input(
            BenchmarkId::new("verbose_rotor_like", label),
            &snap,
            |b, snap| b.iter(|| black_box(VerboseCodec.encode(snap))),
        );
        group.bench_with_input(
            BenchmarkId::new("compact_production_like", label),
            &snap,
            |b, snap| b.iter(|| black_box(CompactCodec.encode(snap))),
        );
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("serialization_decode");
    group.sample_size(10);
    let (heap, tables) = serialization_heap(N, true);
    let snap = capture(&heap, &tables, SimTime(0));
    let verbose = VerboseCodec.encode(&snap);
    let compact = CompactCodec.encode(&snap);
    group.bench_function("verbose_rotor_like", |b| {
        b.iter(|| black_box(VerboseCodec.decode(&verbose).unwrap()))
    });
    group.bench_function("compact_production_like", |b| {
        b.iter(|| black_box(CompactCodec.decode(&compact).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
