//! F4 — detection cost on the mutually-linked cycles of Figure 4, and on
//! chains of K mutually-linked rings (the generalization): fan-out plus
//! the branch-termination rule keep the message count linear in the
//! number of distinct references, not exponential in the sharing.

use acdgc_bench::{bench_system, prepared_fig4, run_detection};
use acdgc_model::{ProcId, RefId, SimDuration};
use acdgc_sim::scenarios;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

/// K garbage rings over the same processes, cross-linked head-to-head so
/// each ring's head also references the next ring's head (K-1 extra
/// dependencies to resolve).
fn linked_rings(k: usize, procs: usize, seed: u64) -> (acdgc_sim::System, ProcId, RefId) {
    let mut sys = bench_system(procs, seed);
    let ids: Vec<ProcId> = (0..procs as u16).map(ProcId).collect();
    let rings: Vec<scenarios::Ring> = (0..k)
        .map(|_| scenarios::ring(&mut sys, &ids, 1, false))
        .collect();
    for pair in rings.windows(2) {
        // Link head of ring i to head of ring i+1 (same process, local).
        sys.add_local_ref(pair[0].heads[0], pair[1].heads[0])
            .unwrap();
    }
    sys.advance(SimDuration::from_millis(1));
    for p in 0..procs {
        sys.take_snapshot(ProcId(p as u16));
    }
    (sys, ProcId(0), rings[0].refs[0])
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_mutual");
    group.sample_size(20);
    group.bench_function("paper_fig4_detect", |b| {
        b.iter_batched(
            || prepared_fig4(13),
            |(mut sys, proc, scion)| {
                assert!(run_detection(&mut sys, proc, scion) >= 1);
                sys
            },
            BatchSize::SmallInput,
        );
    });
    for &k in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("linked_rings_detect", k), &k, |b, &k| {
            b.iter_batched(
                || linked_rings(k, 4, 29),
                |(mut sys, proc, scion)| {
                    run_detection(&mut sys, proc, scion);
                    sys
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
