//! Whole-round wall clock of [`System::gc_round`] as the process count
//! grows, with the parallel compute phases (LGC, snapshot, candidate scan)
//! on and off.
//!
//! The workload is a live anchored ring (every process holds a local chain
//! plus one cross-process reference), so repeated rounds are steady-state:
//! LGC traces but frees nothing, snapshots re-summarize the same graph,
//! scans re-examine the same scions. The parity test in
//! `tests/integration_modes.rs` proves both settings produce bit-identical
//! metrics; this bench measures what the fan-out buys in wall clock. On a
//! single-core host the vendored rayon stand-in degenerates to the
//! sequential loop, so both series coincide there by construction.

use acdgc_bench::bench_system;
use acdgc_model::ProcId;
use acdgc_sim::{scenarios, System};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Objects per process: large enough that per-process LGC + summarization
/// dominates the round over the sequential apply stages.
const OBJS_PER_PROC: usize = 4_000;

fn steady_state_system(procs: usize, parallel: bool) -> System {
    let mut sys = bench_system(procs, 7);
    sys.config_mut().parallel_snapshots = parallel;
    sys.config_mut().parallel_gc_phases = parallel;
    if procs >= 2 {
        let ids: Vec<ProcId> = (0..procs as u16).map(ProcId).collect();
        scenarios::ring(&mut sys, &ids, OBJS_PER_PROC, true);
    } else {
        // Single process: a rooted local chain (no remote refs possible).
        let chain: Vec<_> = (0..OBJS_PER_PROC)
            .map(|_| sys.alloc(ProcId(0), 1))
            .collect();
        for pair in chain.windows(2) {
            sys.add_local_ref(pair[0], pair[1]).unwrap();
        }
        sys.add_root(chain[0]).unwrap();
    }
    // Settle: first round pays one-time allocation of summarizer scratch.
    sys.gc_round();
    sys
}

fn bench_gc_round(c: &mut Criterion) {
    let smoke = std::env::var_os("ACDGC_BENCH_SMOKE").is_some();
    let mut group = c.benchmark_group("gc_round");
    group.sample_size(if smoke { 2 } else { 10 });
    let counts: &[usize] = if smoke { &[2] } else { &[1, 2, 4, 8] };
    for &procs in counts {
        for parallel in [false, true] {
            let label = if parallel { "parallel" } else { "sequential" };
            let mut sys = steady_state_system(procs, parallel);
            group.bench_with_input(BenchmarkId::new(label, procs), &procs, |b, _| {
                b.iter(|| {
                    sys.gc_round();
                    black_box(sys.metrics.snapshots)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gc_round);
criterion_main!(benches);
