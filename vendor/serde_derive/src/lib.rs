//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize` / `Deserialize` on config and metric
//! types but never routes them through a serde `Serializer` at runtime
//! (the only JSON producer is the vendored `serde_json` stub, which builds
//! `Value`s from primitives). The derives therefore only need to *exist*;
//! expanding to an empty token stream is a valid derive expansion and
//! keeps every `#[derive(Serialize, Deserialize)]` site compiling
//! unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
