//! Offline stand-in for the `rand` crate (subset).
//!
//! Implements exactly the surface this workspace uses: `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` convenience methods
//! `gen`, `gen_range` (over integer `Range` / `RangeInclusive`) and
//! `gen_bool`. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic, portable, and statistically solid for simulation use.
//! Distribution details intentionally do not match upstream `rand`; every
//! consumer in this workspace only relies on determinism per seed.

pub mod rngs {
    pub use crate::small::SmallRng;
}

mod small {
    use crate::SeedableRng;

    /// xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into four lanes; never all
            // zero (SplitMix64 output of any input is non-degenerate across
            // four consecutive steps).
            let mut z = seed;
            let mut next = move || {
                z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^ (x >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a uniform value from a range, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Object-safe generator core.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_rng(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(u16, u32, u64, usize);

/// Uniform value in `[0, span)` by widening multiply (Lemire), with a
/// rejection loop to remove bias.
#[inline]
fn uniform_u64(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo >= span || lo >= (u64::MAX - span + 1) % span {
            return (m >> 64) as u64;
        }
    }
}

/// Convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(10);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = r.gen_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "got {hits}");
    }
}
