//! Offline stand-in for the `bytes` crate (subset).
//!
//! Implements `Bytes` / `BytesMut` as thin wrappers over `Vec<u8>` and the
//! `Buf` / `BufMut` trait methods the snapshot codecs use. Multi-byte
//! integers use big-endian byte order, matching upstream `bytes`.

use std::ops::Deref;

/// Immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: s.into_bytes(),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes { data: s.to_vec() }
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]`, which advances
/// the slice itself, exactly like upstream.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write sink for growable buffers.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u32(0xdead_beef);
        b.put_u64(42);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 13);
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32(), 0xdead_beef);
        assert_eq!(cursor.get_u64(), 42);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn bytes_from_string_derefs() {
        let b = Bytes::from(String::from("abc"));
        assert_eq!(&b[..], b"abc");
        assert_eq!(b.len(), 3);
    }
}
