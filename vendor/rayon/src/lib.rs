//! Offline stand-in for `rayon` (subset).
//!
//! Provides `par_iter` / `par_iter_mut` over slices with `for_each` and
//! `map`+`collect`-style fold helpers, executed on scoped OS threads —
//! one chunk per available core — instead of a work-stealing pool. This
//! preserves rayon's semantics (disjoint &mut access, Sync closures,
//! deterministic chunking) at the cost of per-call thread spawn overhead,
//! which is amortized by the chunk sizes used in this workspace.

use std::num::NonZeroUsize;

fn worker_count(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(len).max(1)
}

/// Parallel iterator over `&mut [T]`.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Apply `f` to every element, in parallel across chunks.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut T) + Sync,
    {
        let len = self.slice.len();
        if len == 0 {
            return;
        }
        let workers = worker_count(len);
        if workers == 1 {
            for item in self.slice {
                f(item);
            }
            return;
        }
        let chunk = len.div_ceil(workers);
        std::thread::scope(|scope| {
            for part in self.slice.chunks_mut(chunk) {
                let f = &f;
                scope.spawn(move || {
                    for item in part {
                        f(item);
                    }
                });
            }
        });
    }

    /// Map every element and collect results in input order.
    pub fn map<R, F>(self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&'a mut T) -> R + Sync,
    {
        let len = self.slice.len();
        let mut out: Vec<Option<R>> = Vec::with_capacity(len);
        out.resize_with(len, || None);
        if len == 0 {
            return Vec::new();
        }
        let workers = worker_count(len);
        let chunk = len.div_ceil(workers);
        if workers == 1 {
            for (slot, item) in out.iter_mut().zip(self.slice) {
                *slot = Some(f(item));
            }
        } else {
            std::thread::scope(|scope| {
                for (part, out_part) in self.slice.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
                    let f = &f;
                    scope.spawn(move || {
                        for (slot, item) in out_part.iter_mut().zip(part) {
                            *slot = Some(f(item));
                        }
                    });
                }
            });
        }
        out.into_iter()
            .map(|v| v.expect("worker filled slot"))
            .collect()
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let len = self.slice.len();
        if len == 0 {
            return;
        }
        let workers = worker_count(len);
        if workers == 1 {
            for item in self.slice {
                f(item);
            }
            return;
        }
        let chunk = len.div_ceil(workers);
        std::thread::scope(|scope| {
            for part in self.slice.chunks(chunk) {
                let f = &f;
                scope.spawn(move || {
                    for item in part {
                        f(item);
                    }
                });
            }
        });
    }
}

/// Slice extension providing `par_iter_mut`, as rayon's
/// `IntoParallelRefMutIterator` does for `Vec`/slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
}

/// Slice extension providing `par_iter`.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

pub mod prelude {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn par_iter_mut_touches_every_element_once() {
        let mut v: Vec<u64> = (0..1000).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn par_iter_sums() {
        let v: Vec<u64> = (0..100).collect();
        let total = AtomicU64::new(0);
        v.par_iter().for_each(|&x| {
            total.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), 4950);
    }

    #[test]
    fn map_preserves_order() {
        let mut v: Vec<u64> = (0..57).collect();
        let doubled = v.par_iter_mut().map(|x| *x * 2);
        assert_eq!(doubled, (0..57).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut v: Vec<u64> = Vec::new();
        v.par_iter_mut().for_each(|_| unreachable!());
    }
}
