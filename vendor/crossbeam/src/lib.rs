//! Offline stand-in for `crossbeam` (channel subset).
//!
//! Backs `channel::unbounded` / `channel::bounded` with `std::sync::mpsc`.
//! The `Sender` is an enum over the two std sender flavours so both
//! constructors hand out the same type, as crossbeam does.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, TryRecvError};

    /// Sending half of a channel.
    #[derive(Debug)]
    pub enum Sender<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    // Manual impl: the std senders are Clone for any T; a derive would
    // wrongly demand `T: Clone`.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error from [`Sender::send`]: the receiver disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error from [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity.
        Full(T),
        /// Receiver disconnected.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
                Sender::Bounded(tx) => tx.send(msg).map_err(|e| SendError(e.0)),
            }
        }

        /// Send without blocking; fails with `Full` when a bounded channel
        /// is at capacity.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(msg).map_err(|e| TrySendError::Disconnected(e.0)),
                Sender::Bounded(tx) => tx.try_send(msg).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }

        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.inner.try_iter()
        }
    }

    /// Channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { inner: rx })
    }

    /// Channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError, TrySendError};

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_reports_full() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn disconnected_detected() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.try_send(9), Err(TrySendError::Disconnected(9)));
    }
}
