//! Offline stand-in for the `rustc-hash` crate.
//!
//! The container this workspace builds in has no registry access, so the
//! handful of external crates the workspace uses are vendored as minimal,
//! API-compatible stubs. This one provides `FxHashMap` / `FxHashSet`:
//! `std` collections parameterized with a fast non-cryptographic
//! multiplicative hasher in the spirit of the firefox/rustc "Fx" hash.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Hash map keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// Hash set keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 26;

/// Word-at-a-time multiplicative hasher. Not DoS-resistant; fast on the
/// short integer keys (slots, ref ids) this workspace hashes.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One extra round so single-word keys avalanche into the high bits
        // HashMap's default layout consumes.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(SEED);
        h ^ (h >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let s: FxHashSet<u32> = (0..100).collect();
        assert_eq!(s.len(), 100);
        assert!(s.contains(&42));
    }

    #[test]
    fn hashing_is_stable_per_process() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(7), h(7));
        assert_ne!(h(7), h(8));
    }
}
