//! Offline stand-in for `serde_json` (subset).
//!
//! Covers what the experiments harness needs: building [`Value`] trees via
//! the [`json!`] macro and `From` conversions, an insertion-ordered
//! [`Map`], and [`to_string_pretty`]. There is no parser and no serde
//! bridge — values are constructed programmatically from primitives.

use std::fmt;

/// An insertion-ordered string-keyed object map.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert, replacing any existing entry with the same key in place.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// JSON number: integers kept exact, everything else as f64.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    // Mirror serde_json: emit a decimal point so the value
                    // round-trips as a float.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // serde_json writes null for non-finite floats.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON value tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::I64(v as i64)) }
        }
    )*};
}
macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::U64(v as u64)) }
        }
    )*};
}
impl_from_signed!(i8, i16, i32, i64, isize);
impl_from_unsigned!(u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Serialization error (the stub never fails; kept for signature parity).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error")
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(value: &Value, out: &mut String, indent: usize) {
    const STEP: usize = 2;
    let pad = |out: &mut String, n: usize| out.push_str(&" ".repeat(n));
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                pad(out, indent + STEP);
                write_pretty(item, out, indent + STEP);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            let n = map.len();
            for (i, (k, v)) in map.iter().enumerate() {
                pad(out, indent + STEP);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(v, out, indent + STEP);
                if i + 1 < n {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Pretty-print a [`Value`] with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(value, &mut out, 0);
    Ok(out)
}

/// Build a [`Value`] from JSON-ish syntax. Supports object and array
/// literals (with arbitrary Rust expressions in value position), `null`,
/// and expressions convertible into `Value` via `From`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #![allow(clippy::vec_init_then_push)]
        #[allow(unused_mut)]
        let mut items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_internal!(@arr items ( $($tt)* ));
        $crate::Value::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_internal!(@obj map ( $($tt)* ));
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Token muncher behind [`json!`]: accumulates value tokens until a
/// top-level comma, so value position accepts full Rust expressions
/// (delimited groups hide their inner commas as single token trees).
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // -- objects ----------------------------------------------------------
    (@obj $map:ident ()) => {};
    (@obj $map:ident ( $key:tt : $($rest:tt)* )) => {
        $crate::json_internal!(@val $map $key () $($rest)*)
    };
    (@val $map:ident $key:tt ($($acc:tt)*) , $($rest:tt)*) => {
        $map.insert(($key).to_string(), $crate::json!($($acc)*));
        $crate::json_internal!(@obj $map ( $($rest)* ));
    };
    (@val $map:ident $key:tt ($($acc:tt)*)) => {
        $map.insert(($key).to_string(), $crate::json!($($acc)*));
    };
    (@val $map:ident $key:tt ($($acc:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@val $map $key ($($acc)* $next) $($rest)*)
    };
    // -- arrays -----------------------------------------------------------
    (@arr $items:ident ()) => {};
    (@arr $items:ident ( $($tt:tt)* )) => {
        $crate::json_internal!(@elem $items () $($tt)*)
    };
    (@elem $items:ident ($($acc:tt)*) , $($rest:tt)*) => {
        $items.push($crate::json!($($acc)*));
        $crate::json_internal!(@arr $items ( $($rest)* ));
    };
    (@elem $items:ident ($($acc:tt)*)) => {
        $items.push($crate::json!($($acc)*));
    };
    (@elem $items:ident ($($acc:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@elem $items ($($acc)* $next) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let rows = vec![json!({ "a": 1, "b": 2.5 })];
        let v = json!({ "rows": rows, "name": "x", "flag": true, "none": null });
        let Value::Object(m) = &v else { panic!() };
        assert_eq!(m.len(), 4);
        assert_eq!(m.get("name"), Some(&Value::String("x".into())));
    }

    #[test]
    fn pretty_output_is_valid_json_shape() {
        let v = json!({ "k": [1, 2], "s": "a\"b" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"k\": [\n"));
        assert!(s.contains("\\\"b\""));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a".into(), json!(1));
        m.insert("b".into(), json!(2));
        let old = m.insert("a".into(), json!(3));
        assert_eq!(old, Some(json!(1)));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b"]);
    }
}
