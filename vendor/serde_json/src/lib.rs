//! Offline stand-in for `serde_json` (subset).
//!
//! Covers what the experiments harness and the trace tooling need:
//! building [`Value`] trees via the [`json!`] macro and `From`
//! conversions, an insertion-ordered [`Map`], compact and pretty
//! serialization ([`to_string`], [`to_string_pretty`]), and a [`Value`]
//! parser ([`from_str`]) for round-trip checks on exported artifacts.
//! There is no serde bridge — values are constructed programmatically
//! from primitives.

use std::fmt;

/// An insertion-ordered string-keyed object map.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert, replacing any existing entry with the same key in place.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// JSON number: integers kept exact, everything else as f64.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    // Mirror serde_json: emit a decimal point so the value
                    // round-trips as a float.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // serde_json writes null for non-finite floats.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON value tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                // Match the parser's classification: non-negative integers
                // are always the unsigned variant.
                let v = v as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
    )*};
}
macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::U64(v as u64)) }
        }
    )*};
}
impl_from_signed!(i8, i16, i32, i64, isize);
impl_from_unsigned!(u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Serialization/parse error. Serialization never fails; parsing reports
/// the byte offset and a short description.
#[derive(Debug, Default)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl Error {
    fn at(offset: usize, msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            offset,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.msg.is_empty() {
            write!(f, "serde_json stub error")
        } else {
            write!(f, "{} at byte {}", self.msg, self.offset)
        }
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(value: &Value, out: &mut String, indent: usize) {
    const STEP: usize = 2;
    let pad = |out: &mut String, n: usize| out.push_str(&" ".repeat(n));
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                pad(out, indent + STEP);
                write_pretty(item, out, indent + STEP);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            let n = map.len();
            for (i, (k, v)) in map.iter().enumerate() {
                pad(out, indent + STEP);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(v, out, indent + STEP);
                if i + 1 < n {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Pretty-print a [`Value`] with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(value, &mut out, 0);
    Ok(out)
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

/// Compact single-line serialization of a [`Value`] (the JSONL form).
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(value, &mut out);
    Ok(out)
}

/// Recursive-descent JSON parser over one complete document. Trailing
/// whitespace is allowed; trailing garbage is an error.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(self.pos, format!("expected '{}'", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::at(self.pos, format!("expected '{kw}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.expect_keyword("null", Value::Null),
            Some(b't') => self.expect_keyword("true", Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(Error::at(self.pos, format!("unexpected byte 0x{b:02x}"))),
            None => Err(Error::at(self.pos, "unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::at(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::at(self.pos, "truncated \\u escape"))?;
        let s =
            std::str::from_utf8(slice).map_err(|_| Error::at(self.pos, "non-ascii \\u escape"))?;
        let v =
            u16::from_str_radix(s, 16).map_err(|_| Error::at(self.pos, "invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{0008}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{000c}');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let cp = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(u32::from(hi))
                            };
                            out.push(
                                c.ok_or_else(|| Error::at(self.pos, "invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(Error::at(self.pos, "invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the byte
                    // stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::at(self.pos, "invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::at(start, "invalid number"))
    }
}

/// Parse one JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at(p.pos, "trailing characters"));
    }
    Ok(v)
}

/// Build a [`Value`] from JSON-ish syntax. Supports object and array
/// literals (with arbitrary Rust expressions in value position), `null`,
/// and expressions convertible into `Value` via `From`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #![allow(clippy::vec_init_then_push)]
        #[allow(unused_mut)]
        let mut items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_internal!(@arr items ( $($tt)* ));
        $crate::Value::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_internal!(@obj map ( $($tt)* ));
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Token muncher behind [`json!`]: accumulates value tokens until a
/// top-level comma, so value position accepts full Rust expressions
/// (delimited groups hide their inner commas as single token trees).
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // -- objects ----------------------------------------------------------
    (@obj $map:ident ()) => {};
    (@obj $map:ident ( $key:tt : $($rest:tt)* )) => {
        $crate::json_internal!(@val $map $key () $($rest)*)
    };
    (@val $map:ident $key:tt ($($acc:tt)*) , $($rest:tt)*) => {
        $map.insert(($key).to_string(), $crate::json!($($acc)*));
        $crate::json_internal!(@obj $map ( $($rest)* ));
    };
    (@val $map:ident $key:tt ($($acc:tt)*)) => {
        $map.insert(($key).to_string(), $crate::json!($($acc)*));
    };
    (@val $map:ident $key:tt ($($acc:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@val $map $key ($($acc)* $next) $($rest)*)
    };
    // -- arrays -----------------------------------------------------------
    (@arr $items:ident ()) => {};
    (@arr $items:ident ( $($tt:tt)* )) => {
        $crate::json_internal!(@elem $items () $($tt)*)
    };
    (@elem $items:ident ($($acc:tt)*) , $($rest:tt)*) => {
        $items.push($crate::json!($($acc)*));
        $crate::json_internal!(@arr $items ( $($rest)* ));
    };
    (@elem $items:ident ($($acc:tt)*)) => {
        $items.push($crate::json!($($acc)*));
    };
    (@elem $items:ident ($($acc:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@elem $items ($($acc)* $next) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let rows = vec![json!({ "a": 1, "b": 2.5 })];
        let v = json!({ "rows": rows, "name": "x", "flag": true, "none": null });
        let Value::Object(m) = &v else { panic!() };
        assert_eq!(m.len(), 4);
        assert_eq!(m.get("name"), Some(&Value::String("x".into())));
    }

    #[test]
    fn pretty_output_is_valid_json_shape() {
        let v = json!({ "k": [1, 2], "s": "a\"b" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"k\": [\n"));
        assert!(s.contains("\\\"b\""));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn compact_round_trips_through_parser() {
        let v = json!({
            "type": "cdm_sent",
            "neg": -3,
            "big": u64::MAX,
            "f": 2.5,
            "s": "a\"b\\c\nd\te",
            "arr": [1, [2, 3], {}],
            "flag": false,
            "none": null,
        });
        let line = to_string(&v).unwrap();
        assert!(!line.contains('\n'));
        let back = from_str(&line).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parser_handles_unicode_escapes() {
        let v = from_str(r#""\u00e9 \ud83d\ude00 \u0001""#).unwrap();
        assert_eq!(v, Value::String("\u{e9} \u{1F600} \u{1}".to_string()));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("{\"a\": 1,}").is_err(), "trailing comma");
        assert!(from_str("[1 2]").is_err());
        assert!(from_str("{\"a\": 1} tail").is_err());
        assert!(from_str("").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn parser_number_classes() {
        assert_eq!(from_str("7").unwrap(), Value::Number(Number::U64(7)));
        assert_eq!(from_str("-7").unwrap(), Value::Number(Number::I64(-7)));
        assert_eq!(from_str("2.5").unwrap(), Value::Number(Number::F64(2.5)));
        assert_eq!(from_str("1e3").unwrap(), Value::Number(Number::F64(1000.0)));
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a".into(), json!(1));
        m.insert("b".into(), json!(2));
        let old = m.insert("a".into(), json!(3));
        assert_eq!(old, Some(json!(1)));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b"]);
    }
}
