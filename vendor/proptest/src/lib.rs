//! Offline stand-in for `proptest` (subset).
//!
//! Implements the strategy combinators and macros this workspace uses —
//! integer / float range strategies, tuples, `Just`, `collection::vec`,
//! `prop_map` / `prop_flat_map`, and the `proptest!` family of macros —
//! over a deterministic splitmix64 generator. Differences from upstream:
//! no shrinking (a failing case reports its inputs via `Debug` where the
//! assertion message includes them), no persistence of regression seeds
//! (`.proptest-regressions` files are ignored), and cases are derived from
//! a fixed per-test seed so runs are reproducible.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Deterministic RNG driving strategy sampling (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`. `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Modulo bias is immaterial for test sampling at these spans.
            self.next_u64() % n
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        pub fn reject(msg: String) -> Self {
            TestCaseError::Reject(msg)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Execute `cases` sampled runs of `case`, panicking on the first
    /// failure. Rejected cases (assumptions) are retried with fresh
    /// samples, up to a bounded number of attempts.
    pub fn run(
        config: &crate::ProptestConfig,
        id: &str,
        mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
    ) {
        let base = fnv1a(id);
        let cases = config.cases.max(1) as u64;
        let max_attempts = cases.saturating_mul(16);
        let mut passed = 0u64;
        let mut attempt = 0u64;
        while passed < cases {
            if attempt >= max_attempts {
                panic!(
                    "proptest stub: {id}: too many rejected cases \
                     ({passed}/{cases} passed after {attempt} attempts)"
                );
            }
            let mut rng =
                TestRng::from_seed(base.wrapping_add(attempt.wrapping_mul(0x5851_f42d_4c95_7f2d)));
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest stub: {id}: case {passed} failed: {msg}")
                }
            }
        }
    }
}

use test_runner::TestRng;

/// Test-runner configuration. Only `cases` is honoured by the stub; the
/// other fields exist so `..ProptestConfig::default()` struct updates from
/// upstream-style call sites compile unchanged.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
    pub max_global_rejects: u32,
    pub fork: bool,
    pub timeout: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 4096,
            fork: false,
            timeout: 0,
        }
    }
}

/// A source of sampled values. Unlike upstream there is no value tree and
/// no shrinking: `generate` draws one value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "proptest stub: prop_filter exhausted retries: {}",
            self.whence
        )
    }
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Number of elements a collection strategy may produce.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_inclusive - self.size.min + 1;
            let len = self.size.min + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Define `#[test]` functions whose arguments are sampled from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::test_runner::run(
                &config,
                concat!(file!(), "::", stringify!($name)),
                |rng| {
                    $( let $arg = $crate::Strategy::generate(&($strat), rng); )+
                    let result: $crate::test_runner::TestCaseResult =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    result
                },
            );
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure fails the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Skip the current case when its sampled inputs do not satisfy a
/// precondition; the runner draws a replacement sample.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<(u64, bool)>> {
        prop::collection::vec((0u64..10, Just(true)), 0..8).prop_map(|v| v.into_iter().collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3u64..9,
            b in 1usize..=4,
            f in 0.0f64..2.5,
            v in pairs(),
        ) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((0.0..2.5).contains(&f));
            prop_assert!(v.len() < 8);
            for (x, t) in v {
                prop_assert!(x < 10);
                prop_assert_eq!(t, true);
            }
        }

        #[test]
        fn flat_map_links_dimensions(n in 1usize..6, _pad in 0u32..2) {
            let strat = (1usize..6).prop_flat_map(|len| prop::collection::vec(0usize..len, len..=len));
            let mut rng = crate::test_runner::TestRng::from_seed(n as u64);
            let sampled = crate::Strategy::generate(&strat, &mut rng);
            prop_assert!(!sampled.is_empty());
            for x in &sampled {
                prop_assert!(*x < sampled.len());
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failing_assert_panics_with_context() {
        crate::test_runner::run(
            &ProptestConfig {
                cases: 4,
                ..ProptestConfig::default()
            },
            "inline",
            |rng| {
                let v = crate::Strategy::generate(&(0u64..4), rng);
                crate::prop_assert!(v > 100, "v was {}", v);
                Ok(())
            },
        );
    }
}
