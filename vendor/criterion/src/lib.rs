//! Offline stand-in for `criterion` (subset).
//!
//! Keeps the `criterion_group!` / `criterion_main!` / `benchmark_group`
//! API shape but measures with plain wall-clock sampling: each benchmark
//! is calibrated to a minimum sample duration, timed for `sample_size`
//! samples, and reported as min/mean/median on stdout plus a
//! machine-readable JSON line under `target/criterion-stub/<group>/`.
//! There is no statistical analysis, outlier detection, or HTML report.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const MIN_SAMPLE_TIME: Duration = Duration::from_millis(2);
const MAX_CALIBRATED_ITERS: u64 = 100_000;

/// Benchmark identifier: a function name plus a displayed parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Units processed per iteration, for derived rates in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How much setup output `iter_batched` should amortize per sample.
/// The stub runs one routine call per sample regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count,
            iters_per_sample: 1,
        }
    }

    /// Time `routine`, auto-calibrating iterations per sample so fast
    /// routines are measured over a resolvable window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one sample
        // spans MIN_SAMPLE_TIME.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_SAMPLE_TIME || iters >= MAX_CALIBRATED_ITERS {
                break;
            }
            iters = (iters * 4).min(MAX_CALIBRATED_ITERS);
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Time `routine` over fresh `setup` output, setup excluded from the
    /// measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.iters_per_sample = 1;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let mut sorted = b.samples.clone();
        sorted.sort();
        if sorted.is_empty() {
            return;
        }
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let label = format!("{}/{}", self.name, id.label());
        let rate = self.throughput.map(|t| {
            let per_sec = |units: u64| units as f64 / mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => format!("{:.3e} elem/s", per_sec(n)),
                Throughput::Bytes(n) => format!("{:.3e} B/s", per_sec(n)),
            }
        });
        println!(
            "{label:<55} time: [{} {} {}]{}",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(median),
            rate.map(|r| format!(" thrpt: [{r}]")).unwrap_or_default()
        );
        self.write_json(id, b, min, mean, median);
    }

    fn write_json(
        &self,
        id: &BenchmarkId,
        b: &Bencher,
        min: Duration,
        mean: Duration,
        median: Duration,
    ) {
        use serde_json::json;
        let dir = std::path::Path::new("target")
            .join("criterion-stub")
            .join(&self.name);
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let value = json!({
            "group": self.name.clone(),
            "id": id.label(),
            "min_ns": min.as_nanos() as u64,
            "mean_ns": mean.as_nanos() as u64,
            "median_ns": median.as_nanos() as u64,
            "samples": b.samples.len(),
            "iters_per_sample": b.iters_per_sample
        });
        let file = dir.join(format!("{}.json", id.label().replace('/', "_")));
        let _ = std::fs::write(
            file,
            serde_json::to_string_pretty(&value).unwrap_or_default(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.benchmark_group(name.to_string())
            .bench_function(name, f);
        self
    }

    /// CLI args are accepted and ignored (`cargo bench` passes
    /// `--bench`); kept for call-site parity.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declare a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub_selftest");
        group.sample_size(5);
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("spin", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
