//! Offline stand-in for `parking_lot` (subset).
//!
//! Wraps `std::sync::Mutex` and `std::sync::RwLock` with parking_lot's
//! non-poisoning API: `lock()` returns the guard directly and a poisoned
//! lock (panicked holder) is simply recovered.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock that does not expose poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock that does not expose poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
