//! Offline stand-in for `serde` (marker subset).
//!
//! Provides the `Serialize` / `Deserialize` *names* — as traits for bound
//! positions and as re-exported derive macros for `#[derive(..)]` sites.
//! No actual serialization machinery exists; nothing in this workspace
//! drives a serde `Serializer` (JSON output goes through the vendored
//! `serde_json` stub's `Value` type directly).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
