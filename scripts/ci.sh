#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
#
# Runs with --offline: the workspace vendors stand-in crates under
# vendor/ and must never touch a registry.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build (release)"
cargo build --release --offline --workspace

echo "==> tests"
cargo test -q --offline --workspace

echo "==> threaded stress (release, seed matrix, traced, hard time budget)"
# The quiescence protocol must terminate these runs on its own; the 300s
# cap is a backstop that fails CI if a run ever degenerates into waiting
# out per-test deadlines. ACDGC_TRACE_ARTIFACT makes the tests export
# their merged event traces as JSONL and re-parse every line (schema
# round-trip gate); on an assertion failure the trace of the failing run
# is dumped to the same directory, so the artifacts below are the first
# place to look when this stage breaks.
trace_dir="target/trace-artifacts"
if ! ACDGC_TRACE_ARTIFACT="$trace_dir" \
    timeout 300 cargo test -q --offline --release --test threaded_stress; then
    echo "threaded stress FAILED — trace artifacts kept under $trace_dir:" >&2
    ls -l "$trace_dir" >&2 || true
    exit 1
fi
echo "trace artifacts kept under $trace_dir:"
ls -l "$trace_dir"

echo "==> clippy (-D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> rustfmt check"
cargo fmt --check

echo "CI OK"
