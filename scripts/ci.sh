#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
#
# Runs with --offline: the workspace vendors stand-in crates under
# vendor/ and must never touch a registry.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build (release)"
cargo build --release --offline --workspace

echo "==> tests"
cargo test -q --offline --workspace

echo "==> threaded stress (release, seed matrix, hard time budget)"
# The quiescence protocol must terminate these runs on its own; the 300s
# cap is a backstop that fails CI if a run ever degenerates into waiting
# out per-test deadlines.
timeout 300 cargo test -q --offline --release --test threaded_stress

echo "==> clippy (-D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> rustfmt check"
cargo fmt --check

echo "CI OK"
