#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, formatting.
#
# Runs with --offline: the workspace vendors stand-in crates under
# vendor/ and must never touch a registry.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build (release)"
cargo build --release --offline --workspace

echo "==> tests"
cargo test -q --offline --workspace

echo "==> threaded stress (release, seed matrix, traced, hard time budget)"
# The quiescence protocol must terminate these runs on its own; the 300s
# cap is a backstop that fails CI if a run ever degenerates into waiting
# out per-test deadlines. ACDGC_TRACE_ARTIFACT makes the tests export
# their merged event traces as JSONL and re-parse every line (schema
# round-trip gate); on an assertion failure the trace of the failing run
# is dumped to the same directory, so the artifacts below are the first
# place to look when this stage breaks.
trace_dir="target/trace-artifacts"
# Start clean: the forensics gates below must judge only artifacts this
# run exported, not leftovers from older revisions with older schemas.
rm -rf "$trace_dir" && mkdir -p "$trace_dir"
if ! ACDGC_TRACE_ARTIFACT="$trace_dir" \
    timeout 300 cargo test -q --offline --release --test threaded_stress; then
    echo "threaded stress FAILED — trace artifacts kept under $trace_dir:" >&2
    ls -l "$trace_dir" >&2 || true
    exit 1
fi
echo "trace artifacts kept under $trace_dir:"
ls -l "$trace_dir"

echo "==> concurrent mutator stress matrix (release, hard time budget)"
# Mutator threads race the collector workers through the per-process
# locks across a seed × drop-rate × mutation-rate matrix (≥30% GC-message
# loss included). Each run must end by quiescence votes and pass the
# shadow-oracle safety/completeness audit; the 300s cap fails CI if the
# matrix ever degenerates into waiting out per-test deadlines. Failing
# runs dump their trace artifacts next to the stress ones above.
ACDGC_TRACE_ARTIFACT="$trace_dir" \
    timeout 300 cargo test -q --offline --release --test concurrent_mutator

echo "==> trace forensics gate (acdgc-report --check)"
# Every artifact the stress stage exported must reconstruct with balanced
# detection ledgers, monotonic hop counters, and — the stress config runs
# with sampling enabled — validated time-series sample lines (monotone
# clocks/counters, declared capacity bound).
sampled_artifact="$(grep -l '"type":"sample"' "$trace_dir"/*.jsonl | head -n 1 || true)"
if [ -z "$sampled_artifact" ]; then
    echo "stress stage exported no sampled artifact (sampling config lost?)" >&2
    exit 1
fi
cargo run -q --offline --release -p acdgc-bench --bin acdgc-report -- --check "$trace_dir"

echo "==> timeline render gate (acdgc-report --timeline)"
# The sampled artifact must render a non-empty timeline: at least one
# sparkline row and a counter-rate table. An empty render means the
# sampler, the JSONL round-trip, or the grouping went dark.
timeline_out="$(cargo run -q --offline --release -p acdgc-bench --bin acdgc-report -- \
    --timeline "$sampled_artifact")"
echo "$timeline_out" | grep -q 'timeline \[global\]' || {
    echo "--timeline rendered no global series" >&2; exit 1; }
echo "$timeline_out" | grep -qE '█|▇|▆|▅|▄|▃|▂' || {
    echo "--timeline sparklines are empty/flat-missing" >&2; exit 1; }
echo "$timeline_out" | grep -q 'avg/s' || {
    echo "--timeline printed no counter-rate table" >&2; exit 1; }

echo "==> critical-path waterfall gate (acdgc-report --critical-path)"
# The stress artifacts are Lamport-stamped (stress_cfg uses
# TraceConfig::causal()), so the slowest detection must render a waterfall
# whose per-category durations sum to its end-to-end latency (the renderer
# asserts the telescoping identity; an empty render means reconstruction
# went dark).
cp_out="$(cargo run -q --offline --release -p acdgc-bench --bin acdgc-report -- \
    --critical-path --top 1 "$sampled_artifact")"
echo "$cp_out" | grep -q 'critical-path: ' || {
    echo "--critical-path rendered nothing" >&2; exit 1; }
echo "$cp_out" | grep -qE 'µs end-to-end' || {
    echo "--critical-path printed no waterfall header" >&2; exit 1; }
echo "$cp_out" | grep -q 'causal: OK' || {
    echo "stress artifact carries no passing causal verdict" >&2; exit 1; }

echo "==> perfetto export gate (acdgc-report --perfetto)"
# The export must be non-empty valid JSON whose flow arrows cover every
# surviving CDM hop: the report prints its own delivered-hop audit, so the
# gate requires zero unmatched deliveries and a parseable document.
perfetto_out="target/trace-artifacts/perfetto.json"
rm -f "$perfetto_out"
pf_report="$(cargo run -q --offline --release -p acdgc-bench --bin acdgc-report -- \
    --perfetto "$perfetto_out" "$sampled_artifact")"
echo "$pf_report" | grep -q 'perfetto: wrote' || {
    echo "--perfetto reported no export" >&2; exit 1; }
echo "$pf_report" | grep -q ' 0 unmatched' || {
    echo "--perfetto export left CDM deliveries without flow arrows" >&2; exit 1; }
[ -s "$perfetto_out" ] || { echo "perfetto export is empty" >&2; exit 1; }
grep -q '"traceEvents"' "$perfetto_out" || {
    echo "perfetto export lacks the traceEvents envelope" >&2; exit 1; }
# One flow pair per traced CDM hop: every delivery in the artifact whose
# matching send survived must appear as a flow-start ("ph":"s") event.
hops="$(grep -c '"type":"cdm_delivered"' "$sampled_artifact" || true)"
flows="$(grep -o '"ph":"s"' "$perfetto_out" | wc -l)"
if [ "$flows" -eq 0 ] || [ "$flows" -gt "$hops" ]; then
    echo "perfetto flow count $flows inconsistent with $hops traced CDM hops" >&2
    exit 1
fi

echo "==> causal gate (clock-tampered artifact must FAIL --check)"
# Negative control for the Lamport checker: rewrite every stamp in a
# healthy artifact to the same constant. Per-process stamps are then
# non-increasing, so --check must reject it. If it passes, the causal
# checker has gone blind.
corrupt_dir="target/trace-artifacts-corrupted"
rm -rf "$corrupt_dir" && mkdir -p "$corrupt_dir"
sed 's/"lc":[0-9]*/"lc":7/g' "$sampled_artifact" > "$corrupt_dir/clock-tampered.jsonl"
grep -q '"lc":7' "$corrupt_dir/clock-tampered.jsonl" || {
    echo "stress artifact carries no lamport stamps to tamper with" >&2; exit 1; }
if cargo run -q --offline --release -p acdgc-bench --bin acdgc-report -- \
    --check "$corrupt_dir/clock-tampered.jsonl" > /dev/null 2>&1; then
    echo "acdgc-report --check accepted a clock-tampered artifact" >&2
    exit 1
fi

echo "==> trace forensics gate (corrupted artifact must FAIL)"
# Negative control: strip every cycle_detected line from a healthy
# artifact — the balance ledger no longer closes, so --check must exit
# non-zero. If it passes, the checker has gone blind.
corrupt_dir="target/trace-artifacts-corrupted"
rm -rf "$corrupt_dir" && mkdir -p "$corrupt_dir"
src_artifact="$(ls "$trace_dir"/*.jsonl | head -n 1)"
grep -v '"type":"cycle_detected"' "$src_artifact" > "$corrupt_dir/corrupted.jsonl"
if cargo run -q --offline --release -p acdgc-bench --bin acdgc-report -- --check "$corrupt_dir" \
    > /dev/null 2>&1; then
    echo "acdgc-report --check accepted a corrupted artifact" >&2
    exit 1
fi

echo "==> sample stream gate (shuffled samples must FAIL --check)"
# Second negative control, aimed at the time-series checker: reverse the
# order of the sample lines in the sampled artifact. Timestamps and
# counters are then non-monotone, so --check must reject it.
{
    grep -v '"type":"sample"' "$sampled_artifact"
    grep '"type":"sample"' "$sampled_artifact" | tac
} > "$corrupt_dir/samples-reversed.jsonl"
if cargo run -q --offline --release -p acdgc-bench --bin acdgc-report -- \
    --check "$corrupt_dir/samples-reversed.jsonl" > /dev/null 2>&1; then
    echo "acdgc-report --check accepted a non-monotone sample stream" >&2
    exit 1
fi

echo "==> parallel-phase determinism gate (release)"
# The gc_round fan-out must be observationally identical with
# parallel_snapshots/parallel_gc_phases on and off — every metric counter,
# merged and per process. Run the parity test under --release as well:
# optimization-level differences (and any future real thread pool) must
# not introduce scheduling-dependent behaviour that debug builds hide.
cargo test -q --offline --release --test integration_modes \
    parallel_phases_are_observationally_identical
# Same bar for telemetry sampling: observation must never perturb the run.
cargo test -q --offline --release --test integration_modes \
    sampling_leaves_the_metrics_ledgers_bit_identical
# And for causal tracing: Lamport stamps are pure observation — clocks on
# vs off must leave every metrics ledger bit-identical.
cargo test -q --offline --release --test integration_modes \
    lamport_clocks_leave_the_metrics_ledgers_bit_identical

echo "==> bench smoke (1-sample compile + run gate)"
# The vendored criterion stand-in ignores CLI filters, so the smoke mode
# is selected by the ACDGC_BENCH_SMOKE env var read in the bench sources:
# tiny inputs, 2 samples, summarization restricted to disjoint_chains.
# This catches bit-rot in the bench harnesses without paying full runs.
ACDGC_BENCH_SMOKE=1 cargo bench --offline -p acdgc-bench --bench summarization
ACDGC_BENCH_SMOKE=1 cargo bench --offline -p acdgc-bench --bench gc_round
ACDGC_BENCH_SMOKE=1 cargo bench --offline -p acdgc-bench --bench trace_overhead

echo "==> rustdoc (-D warnings, no deps)"
# The public API carries #![warn(missing_docs)] on acdgc-sim and
# acdgc-model; broken intra-doc links or missing docs fail the build here.
RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --no-deps --workspace

echo "==> clippy (-D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> rustfmt check"
cargo fmt --check

echo "CI OK"
